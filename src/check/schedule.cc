#include "check/schedule.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/rng.hh"

namespace terp {
namespace check {

const char *
opKindName(OpKind k)
{
    switch (k) {
      case OpKind::Work: return "work";
      case OpKind::Begin: return "begin";
      case OpKind::End: return "end";
      case OpKind::ManualBegin: return "manual-begin";
      case OpKind::ManualEnd: return "manual-end";
      case OpKind::Access: return "access";
      case OpKind::Range: return "range";
      case OpKind::Guarded: return "guarded";
      case OpKind::Sweep: return "sweep";
      case OpKind::TxPut: return "tx-put";
      case OpKind::CrashRecover: return "crash-recover";
      case OpKind::TxBegin: return "tx-begin";
      case OpKind::TxWrite: return "tx-write";
      case OpKind::TxCommit: return "tx-commit";
      case OpKind::TxAbort: return "tx-abort";
      default: return "?";
    }
}

namespace {

/**
 * The generator's lightweight model of the run: enough state to emit
 * mostly well-formed schedules. It mirrors the replayer's skip rules
 * (a blocked Begin consumes the pair) so the bookkeeping stays exact
 * even across the blocking ablation.
 */
struct GenState
{
    std::map<std::pair<unsigned, pm::PmoId>, unsigned> depth;
    std::map<pm::PmoId, bool> manualMapped;
    std::map<pm::PmoId, int> basicOwner; //!< -1 = unowned
    std::vector<int> blockedOn;          //!< per tid; -1 = runnable

    /** TxManager mirror: per-thread transaction shape. */
    struct TxGen
    {
        unsigned depth = 0;
        bool aborted = false;
        std::vector<pm::PmoId> locks;
    };
    std::vector<TxGen> tx;                //!< per tid
    std::map<pm::PmoId, unsigned> txOwner; //!< pmo -> locking tid

    explicit GenState(unsigned threads)
        : blockedOn(threads, -1), tx(threads)
    {
    }

    bool
    txBusy(unsigned tid, pm::PmoId pmo) const
    {
        auto it = txOwner.find(pmo);
        return it != txOwner.end() && it->second != tid;
    }

    void
    txLock(unsigned tid, pm::PmoId pmo)
    {
        if (txOwner.emplace(pmo, tid).second)
            tx[tid].locks.push_back(pmo);
    }

    void
    txRelease(unsigned tid)
    {
        for (pm::PmoId pmo : tx[tid].locks)
            txOwner.erase(pmo);
        tx[tid] = TxGen{};
    }

    bool
    txIdle() const
    {
        for (const TxGen &t : tx)
            if (t.depth > 0)
                return false;
        return true;
    }
};

pm::Mode
pickMode(Rng &rng)
{
    switch (rng.nextBelow(4)) {
      case 0: return pm::Mode::Read;
      default: return pm::Mode::ReadWrite;
    }
}

} // namespace

Schedule
generate(std::uint64_t seed, const core::RuntimeConfig &cfg,
         const GenParams &p)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    Schedule s;
    s.threads = std::max(1u, p.threads);
    s.pmos = std::max(1u, p.pmos);
    s.pmoSize = p.pmoSize;
    s.ewTarget = std::max<Cycles>(p.ewTarget, 5 * cyclesPerUs);
    // Every sweeper randomize bills all live threads for the move
    // plus the TLB shootdown.  If that bill per EW period exceeds
    // the period itself (possible when many PMOs stay held), thread
    // clocks outrun the sweeper geometrically and the replay never
    // terminates; keep the window comfortably above that cost.
    s.ewTarget = std::max<Cycles>(
        s.ewTarget,
        2 * s.pmos * (latency::randomize + latency::tlbInvalidate));

    const bool manual = cfg.insertion == core::Insertion::Manual;
    const bool basic = cfg.basicBlocking;
    GenState st(s.threads);

    auto emitWork = [&](unsigned tid) {
        Op op;
        op.kind = OpKind::Work;
        op.tid = tid;
        // Mostly short slices; occasionally a long one that pushes
        // the thread past several sweep boundaries and the EW target.
        op.work = rng.nextBool(0.25)
                      ? rng.nextRange(s.ewTarget, 3 * s.ewTarget)
                      : rng.nextRange(200, 4000);
        s.ops.push_back(op);
    };

    for (unsigned i = 0; i < p.events; ++i) {
        unsigned tid = static_cast<unsigned>(rng.nextBelow(s.threads));
        if (basic && st.blockedOn[tid] != -1) {
            // Every op of a blocked thread would be skipped by the
            // replayer; spend the slot on a sweeper tick instead.
            Op op;
            op.kind = OpKind::Sweep;
            s.ops.push_back(op);
            continue;
        }
        // PmoManager ids start at 1 (0 is the reserved null id).
        pm::PmoId pmo =
            static_cast<pm::PmoId>(1 + rng.nextBelow(s.pmos));
        unsigned roll = static_cast<unsigned>(rng.nextBelow(100));

        if (roll < 20) {
            emitWork(tid);
            continue;
        }
        if (roll < 27) {
            Op op;
            op.kind = OpKind::Sweep;
            s.ops.push_back(op);
            continue;
        }
        if (p.persistOps && roll < 37) {
            // Undo-log transaction against the persistence substrate:
            // a handful of word writes, sometimes all to one word
            // (stride 0) to exercise the write-set dedupe.
            Op op;
            op.kind = OpKind::TxPut;
            op.tid = tid;
            op.pmo = pmo;
            op.accesses = 1 + static_cast<unsigned>(rng.nextBelow(3));
            op.offset = rng.nextBelow(s.pmoSize - 1024) & ~7ULL;
            op.bytes = rng.nextBool(0.3) ? 0 : 8;
            s.ops.push_back(op);
            continue;
        }
        if ((p.persistOps || p.txnOps) && roll >= 37 && roll < 40 &&
            st.txIdle()) {
            // Power failure + restart + recovery. All volatile state
            // dies with the process, so the generator's model resets
            // with it. Only emitted at transaction-idle points: the
            // differ treats transactions as atomic ops (recovery
            // must be a no-op); crash points *inside* transactions
            // are terp-crash's job.
            Op op;
            op.kind = OpKind::CrashRecover;
            op.tid = tid;
            s.ops.push_back(op);
            st.depth.clear();
            st.manualMapped.clear();
            st.basicOwner.clear();
            for (auto &b : st.blockedOn)
                b = -1;
            st.txOwner.clear();
            for (auto &t : st.tx)
                t = GenState::TxGen{};
            continue;
        }
        if (p.txnOps && roll >= 40 && roll < 70) {
            GenState::TxGen &tg = st.tx[tid];
            if (tg.depth == 0) {
                // Outermost begin: one or two PMOs, undo or redo.
                // The lock set may collide with another thread's —
                // that is the Busy path, worth fuzzing too — so the
                // model only advances when the begin will succeed.
                Op op;
                op.kind = OpKind::TxBegin;
                op.tid = tid;
                op.pmo = pmo;
                if (rng.nextBool(0.35)) {
                    op.pmo2 = static_cast<pm::PmoId>(
                        1 + rng.nextBelow(s.pmos));
                }
                op.redo = rng.nextBool(0.4);
                bool busy = st.txBusy(tid, op.pmo) ||
                            (op.pmo2 && st.txBusy(tid, op.pmo2));
                s.ops.push_back(op);
                if (!busy) {
                    tg.depth = 1;
                    tg.aborted = false;
                    st.txLock(tid, op.pmo);
                    if (op.pmo2)
                        st.txLock(tid, op.pmo2);
                }
                continue;
            }
            unsigned r2 =
                static_cast<unsigned>(rng.nextBelow(100));
            Op op;
            op.tid = tid;
            if (tg.aborted || r2 < 22) {
                // Unwind one level (the only move after an abort).
                op.kind = OpKind::TxCommit;
                s.ops.push_back(op);
                if (--tg.depth == 0)
                    st.txRelease(tid);
                continue;
            }
            if (r2 < 34 && tg.depth < 3) {
                // Nested begin, possibly growing the lock set.
                op.kind = OpKind::TxBegin;
                op.pmo = pmo;
                bool busy = st.txBusy(tid, pmo);
                s.ops.push_back(op);
                if (!busy) {
                    st.txLock(tid, pmo);
                    ++tg.depth;
                }
                continue;
            }
            if (r2 < 42) {
                op.kind = OpKind::TxAbort;
                s.ops.push_back(op);
                tg.aborted = true;
                continue;
            }
            op.kind = OpKind::TxWrite;
            op.pmo = tg.locks[static_cast<std::size_t>(
                rng.nextBelow(tg.locks.size()))];
            op.offset = rng.nextBelow(s.pmoSize - 1024) & ~7ULL;
            s.ops.push_back(op);
            continue;
        }
        if (roll < 45) {
            Op op;
            op.kind = OpKind::Access;
            op.tid = tid;
            op.pmo = pmo;
            op.write = rng.nextBool(0.5);
            op.offset = rng.nextBelow(s.pmoSize);
            s.ops.push_back(op);
            continue;
        }
        if (roll < 52 && !manual && !basic) {
            Op op;
            op.kind = OpKind::Range;
            op.tid = tid;
            op.pmo = pmo;
            op.write = rng.nextBool(0.5);
            op.offset = rng.nextBelow(s.pmoSize - 1024);
            op.bytes = 1 + rng.nextBelow(700);
            s.ops.push_back(op);
            continue;
        }

        if (manual) {
            Op op;
            op.tid = tid;
            op.pmo = pmo;
            if (!st.manualMapped[pmo]) {
                op.kind = OpKind::ManualBegin;
                op.mode = pickMode(rng);
                st.manualMapped[pmo] = true;
            } else {
                // Any thread may issue the manual end; MERR does not
                // tie the detach to the attaching thread.
                op.kind = OpKind::ManualEnd;
                st.manualMapped[pmo] = false;
            }
            s.ops.push_back(op);
            continue;
        }

        if (roll < 70) {
            // Guarded region (all auto schemes; under basic this is
            // the op that may block inside the RAII constructor).
            Op op;
            op.kind = OpKind::Guarded;
            op.tid = tid;
            op.pmo = pmo;
            op.mode = pickMode(rng);
            op.accesses = static_cast<unsigned>(rng.nextBelow(4));
            op.offset = rng.nextBelow(s.pmoSize - 1024);
            op.write = rng.nextBool(0.5);
            s.ops.push_back(op);
            continue;
        }

        unsigned &d = st.depth[{tid, pmo}];
        if (basic && st.basicOwner.count(pmo) == 0)
            st.basicOwner[pmo] = -1;
        bool mayBegin = basic
                            ? st.basicOwner[pmo] != static_cast<int>(tid)
                            : d < 3;
        bool mayEnd = basic ? st.basicOwner[pmo] == static_cast<int>(tid)
                            : d > 0;
        Op op;
        op.tid = tid;
        op.pmo = pmo;
        if (mayEnd && (rng.nextBool(0.5) || !mayBegin)) {
            op.kind = OpKind::End;
            if (basic) {
                st.basicOwner[pmo] = -1;
                for (auto &b : st.blockedOn)
                    if (b == static_cast<int>(pmo))
                        b = -1;
            } else {
                --d;
            }
        } else if (mayBegin) {
            op.kind = OpKind::Begin;
            op.mode = pickMode(rng);
            if (basic) {
                if (st.basicOwner[pmo] == -1)
                    st.basicOwner[pmo] = static_cast<int>(tid);
                else
                    st.blockedOn[tid] = static_cast<int>(pmo);
            } else {
                ++d;
            }
        } else {
            emitWork(tid);
            continue;
        }
        s.ops.push_back(op);
    }

    // Epilogue: close what is still open so most runs end balanced
    // (the replayer tolerates unbalanced tails; finalize() closes
    // the remaining windows). Transactions unwind first — commits
    // at every open depth, which also sweeps aborted transactions
    // out through their outermost end.
    for (unsigned t = 0; t < s.threads; ++t) {
        while (st.tx[t].depth > 0) {
            Op op;
            op.kind = OpKind::TxCommit;
            op.tid = t;
            s.ops.push_back(op);
            --st.tx[t].depth;
        }
    }
    if (manual) {
        for (auto &[pmo, mapped] : st.manualMapped) {
            if (!mapped)
                continue;
            Op op;
            op.kind = OpKind::ManualEnd;
            op.pmo = pmo;
            s.ops.push_back(op);
        }
    } else if (basic) {
        for (auto &[pmo, owner] : st.basicOwner) {
            if (owner < 0)
                continue;
            Op op;
            op.kind = OpKind::End;
            op.tid = static_cast<unsigned>(owner);
            op.pmo = pmo;
            s.ops.push_back(op);
        }
    } else {
        for (auto &[key, d] : st.depth) {
            for (unsigned k = 0; k < d; ++k) {
                Op op;
                op.kind = OpKind::End;
                op.tid = key.first;
                op.pmo = key.second;
                s.ops.push_back(op);
            }
        }
    }
    return s;
}

std::string
describeOp(const Op &op)
{
    std::ostringstream os;
    os << "t" << op.tid << " " << opKindName(op.kind);
    switch (op.kind) {
      case OpKind::Work:
        os << "(" << op.work << "cyc)";
        break;
      case OpKind::Begin:
      case OpKind::ManualBegin:
        os << "(p" << op.pmo << ", "
           << (op.mode == pm::Mode::Read ? "R" : "RW") << ")";
        break;
      case OpKind::End:
      case OpKind::ManualEnd:
        os << "(p" << op.pmo << ")";
        break;
      case OpKind::Access:
        os << "(p" << op.pmo << "+" << op.offset << ", "
           << (op.write ? "st" : "ld") << ")";
        break;
      case OpKind::Range:
        os << "(p" << op.pmo << "+" << op.offset << ", " << op.bytes
           << "B, " << (op.write ? "st" : "ld") << ")";
        break;
      case OpKind::Guarded:
        os << "(p" << op.pmo << ", "
           << (op.mode == pm::Mode::Read ? "R" : "RW") << ", "
           << op.accesses << " acc)";
        break;
      case OpKind::TxPut:
        os << "(p" << op.pmo << "+" << op.offset << ", "
           << op.accesses << " writes, stride " << op.bytes << ")";
        break;
      case OpKind::CrashRecover:
        os << "()";
        break;
      case OpKind::Sweep:
        os << "()";
        break;
      case OpKind::TxBegin:
        os << "(p" << op.pmo;
        if (op.pmo2)
            os << "+p" << op.pmo2;
        os << ", " << (op.redo ? "redo" : "undo") << ")";
        break;
      case OpKind::TxWrite:
        os << "(p" << op.pmo << "+" << op.offset << ")";
        break;
      case OpKind::TxCommit:
      case OpKind::TxAbort:
        os << "()";
        break;
    }
    return os.str();
}

std::string
reproducerSnippet(const Schedule &s, const std::string &scheme,
                  std::uint64_t seed)
{
    std::ostringstream os;
    os << "// terp-fuzz reproducer: scheme=" << scheme << " seed="
       << seed << " (replay: terp-fuzz --scheme " << scheme
       << " --first-seed " << seed << " --seeds 1)\n";
    std::string factory = scheme;
    if (scheme == "ttnc")
        factory = "ttNoCombining";
    else if (scheme == "basic")
        factory = "basicSemantics";
    os << "sim::Machine mach;\n";
    os << "pm::PmoManager pmos;\n";
    for (unsigned p = 0; p < s.pmos; ++p)
        os << "pmos.create(\"p" << p + 1 << "\", " << s.pmoSize
           << ");\n"; // create() hands out ids 1..N in order
    os << "core::Runtime rt(mach, pmos, core::RuntimeConfig::"
       << factory << "(" << s.ewTarget << "));\n";
    bool persist = std::any_of(
        s.ops.begin(), s.ops.end(), [](const Op &op) {
            return op.kind == OpKind::TxPut ||
                   op.kind == OpKind::CrashRecover ||
                   op.kind == OpKind::TxBegin ||
                   op.kind == OpKind::TxWrite ||
                   op.kind == OpKind::TxCommit ||
                   op.kind == OpKind::TxAbort;
        });
    if (persist) {
        os << "pm::PersistDomain dom;\n";
        os << "rt.attachPersistence(&dom);\n";
    }
    for (unsigned t = 0; t < s.threads; ++t)
        os << "auto &t" << t << " = mach.spawnThread();\n";
    os << "// fire rt.onSweep at every " << "hookPeriod"
       << " boundary of the acting thread's clock between ops\n";
    for (const Op &op : s.ops) {
        switch (op.kind) {
          case OpKind::Work:
            os << "t" << op.tid << ".work(" << op.work << ");\n";
            break;
          case OpKind::Begin:
            os << "rt.regionBegin(t" << op.tid << ", " << op.pmo
               << ", pm::Mode::"
               << (op.mode == pm::Mode::Read ? "Read" : "ReadWrite")
               << ");\n";
            break;
          case OpKind::End:
            os << "rt.regionEnd(t" << op.tid << ", " << op.pmo
               << ");\n";
            break;
          case OpKind::ManualBegin:
            os << "rt.manualBegin(t" << op.tid << ", " << op.pmo
               << ", pm::Mode::"
               << (op.mode == pm::Mode::Read ? "Read" : "ReadWrite")
               << ");\n";
            break;
          case OpKind::ManualEnd:
            os << "rt.manualEnd(t" << op.tid << ", " << op.pmo
               << ");\n";
            break;
          case OpKind::Access:
            os << "rt.tryAccess(t" << op.tid << ", pm::Oid(" << op.pmo
               << ", " << op.offset << "), "
               << (op.write ? "true" : "false") << ");\n";
            break;
          case OpKind::Range:
            os << "rt.accessRange(t" << op.tid << ", pm::Oid("
               << op.pmo << ", " << op.offset << "), " << op.bytes
               << ", " << (op.write ? "true" : "false") << ");\n";
            break;
          case OpKind::Guarded:
            os << "{ core::RegionGuard g(rt, t" << op.tid << ", "
               << op.pmo << ", pm::Mode::"
               << (op.mode == pm::Mode::Read ? "Read" : "ReadWrite")
               << "); /* " << op.accesses << " accesses */ }\n";
            break;
          case OpKind::TxPut:
            os << "{ auto &log = dom.openLog(" << op.pmo
               << ", 1ULL << 32); log.begin(t" << op.tid << "); "
               << "for (unsigned i = 0; i < " << op.accesses
               << "; ++i) log.write(t" << op.tid << ", pm::Oid("
               << op.pmo << ", " << op.offset << " + i * " << op.bytes
               << "), i); log.commit(t" << op.tid << "); }\n";
            break;
          case OpKind::CrashRecover:
            os << "rt.crash(mach.maxClock()); rt.recover(t" << op.tid
               << ");\n";
            break;
          case OpKind::Sweep:
            os << "rt.onSweep(/* next boundary */);\n";
            break;
          case OpKind::TxBegin:
            os << "rt.tx()->begin(t" << op.tid << ", " << op.tid
               << ", {" << op.pmo;
            if (op.pmo2)
               os << ", " << op.pmo2;
            os << "}, pm::TxKind::" << (op.redo ? "Redo" : "Undo")
               << ");\n";
            break;
          case OpKind::TxWrite:
            os << "rt.tx()->write(t" << op.tid << ", " << op.tid
               << ", pm::Oid(" << op.pmo << ", " << op.offset
               << "), /* value */ 0);\n";
            break;
          case OpKind::TxCommit:
            os << "rt.tx()->commit(t" << op.tid << ", " << op.tid
               << ");\n";
            break;
          case OpKind::TxAbort:
            os << "rt.tx()->abort(t" << op.tid << ", " << op.tid
               << ");\n";
            break;
        }
    }
    os << "rt.finalize();\n";
    return os.str();
}

} // namespace check
} // namespace terp
