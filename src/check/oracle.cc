#include "check/oracle.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "common/units.hh"

namespace terp {
namespace check {

using semantics::SemanticsKind;
using semantics::Verdict;

namespace {

std::string
fmt(const char *what, std::uint64_t expect, std::uint64_t got)
{
    std::ostringstream os;
    os << what << ": expected " << expect << ", got " << got;
    return os.str();
}

SemanticsKind
specKindFor(const core::RuntimeConfig &cfg)
{
    if (cfg.basicBlocking || cfg.insertion == core::Insertion::Manual)
        return SemanticsKind::Basic;
    if (cfg.condInstructions && !cfg.windowCombining)
        return SemanticsKind::Outermost;
    return SemanticsKind::EwConscious;
}

} // namespace

SpecOracle::SpecOracle(const core::RuntimeConfig &config,
                       unsigned threads)
    : cfg(config), blockedOn(threads, -1)
{
    spec = semantics::AttachSemantics::make(specKindFor(cfg),
                                            cfg.ewTarget);
}

Cycles
SpecOracle::realAttachCost() const
{
    Cycles c = latency::attachSyscall;
    if (cfg.randomizeOnAttach)
        c += latency::randomize;
    if (usesCond())
        c += latency::silentCond;
    return c;
}

// ------------------------------------------------------- predicates

bool
SpecOracle::canEnd(unsigned tid, pm::PmoId pmo) const
{
    if (cfg.basicBlocking)
        return ownsBasic(tid, pmo);
    auto it = depth.find({tid, pmo});
    return it != depth.end() && it->second > 0;
}

bool
SpecOracle::canManualBegin(pm::PmoId pmo) const
{
    auto it = ps.find(pmo);
    return it == ps.end() || !it->second.mapped;
}

bool
SpecOracle::canManualEnd(pm::PmoId pmo) const
{
    auto it = ps.find(pmo);
    return it != ps.end() && it->second.mapped;
}

bool
SpecOracle::endSafeAt(unsigned tid, pm::PmoId pmo, Cycles now) const
{
    auto it = ps.find(pmo);
    if (it == ps.end() || !it->second.mapped)
        return true;
    const PmoState &s = it->second;
    if (now >= s.ewOpen)
        return true;
    // The thread's clock is behind the window's opening edge.  Only
    // ends that the runtime would lower to a real detach close the
    // window; silent/delayed ends never touch the tracker.
    if (cfg.insertion == core::Insertion::Manual)
        return false; // manualEnd always unmaps
    if (cfg.basicBlocking)
        return false; // basic ends always lower to a real detach,
                      // and a sweeper randomize may have advanced
                      // the window edge past the owner's clock
    if (spec && spec->kind() == SemanticsKind::Outermost) {
        // No window combining: the last holder's outermost end
        // detaches immediately regardless of window age.
        auto d = depth.find({tid, pmo});
        bool outermost = d != depth.end() && d->second == 1;
        return !(outermost && s.holders.size() == 1 &&
                 s.holders.count(tid) > 0);
    }
    // EW-conscious schemes only detach once the window has aged past
    // the target, which implies now >= ewOpen.
    return true;
}

bool
SpecOracle::willBlock(unsigned tid, pm::PmoId pmo) const
{
    auto it = ps.find(pmo);
    return it != ps.end() && it->second.mapped &&
           it->second.basicOwner != static_cast<int>(tid);
}

bool
SpecOracle::ownsBasic(unsigned tid, pm::PmoId pmo) const
{
    auto it = ps.find(pmo);
    return it != ps.end() && it->second.mapped &&
           it->second.basicOwner == static_cast<int>(tid);
}

bool
SpecOracle::isBlocked(unsigned tid) const
{
    return blockedOn.at(tid) != -1;
}

// ------------------------------------------------- mirror plumbing

void
SpecOracle::openEw(PmoState &s, Cycles tCb, Cycles tPost)
{
    s.mapped = true;
    s.swLast = cfg.windowCombining ? tCb : tPost;
    s.ewOpen = tPost;
    s.everSeen = true;
    blameOpen(s, tPost);
}

void
SpecOracle::closeEw(PmoState &s, Cycles t)
{
    blameClose(s, t >= s.ewOpen ? t : s.ewOpen);
    s.ew.add(t >= s.ewOpen ? t - s.ewOpen : 0);
    s.mapped = false;
    s.procMode = pm::Mode::None;
}

// The mirror replays EwTracker's segment algorithm over the oracle's
// own state: cause-relevant transitions (grants, revokes) resolve the
// tail span, the close truncates to the close time and asserts the
// tiling. Held means any mirrored thread window, manual span or basic
// owner; idle splits at the EW deadline into app_hold / sweeper_lag.
// The oracle never installs hold/idle overrides or dark periods —
// those need serve/txn/energy hooks outside the fuzzer's scope.

void
SpecOracle::blameOpen(PmoState &s, Cycles t)
{
    s.segs.clear();
    s.causeSince = t;
}

void
SpecOracle::blameFlush(PmoState &s, Cycles t)
{
    if (t <= s.causeSince)
        return;
    auto append = [&s](Cycles end, semantics::BlameCause c) {
        auto cc = static_cast<std::uint8_t>(c);
        if (!s.segs.empty() && s.segs.back().second == cc)
            s.segs.back().first = end;
        else
            s.segs.push_back({end, cc});
        s.causeSince = end;
    };
    bool held = !s.tewOpen.empty() || s.manualHeld ||
                s.basicOwner != -1;
    Cycles deadline = s.ewOpen + cfg.ewTarget;
    if (held || cfg.ewTarget == 0 || t <= deadline) {
        append(t, semantics::BlameCause::AppHold);
    } else {
        if (s.causeSince < deadline)
            append(deadline, semantics::BlameCause::AppHold);
        append(t, semantics::BlameCause::SweeperLag);
    }
}

void
SpecOracle::blameClose(PmoState &s, Cycles t)
{
    blameFlush(s, t);
    Cycles start = s.ewOpen;
    Cycles sum = 0;
    for (const auto &seg : s.segs) {
        if (start >= t)
            break;
        Cycles end = std::min(seg.first, t);
        if (end <= start)
            break;
        s.blame[seg.second] += end - start;
        sum += end - start;
        start = end;
    }
    s.segs.clear();
    TERP_ASSERT(sum == t - s.ewOpen,
                "oracle blame segments don't tile the window");
}

void
SpecOracle::grantMirror(PmoState &s, unsigned tid, pm::Mode mode,
                        Cycles t)
{
    if (s.mapped)
        blameFlush(s, t);
    s.holders[tid] = mode;
    s.tewOpen[tid] = t;
    // Runtime grantThread widens the process-matrix entry so every
    // granted mode stays covered (the Fig 4 condition).
    s.procMode = static_cast<pm::Mode>(
        static_cast<unsigned>(s.procMode) |
        static_cast<unsigned>(mode));
}

void
SpecOracle::revokeMirror(PmoState &s, unsigned tid, Cycles t)
{
    if (s.mapped)
        blameFlush(s, t);
    s.holders.erase(tid);
    auto it = s.tewOpen.find(tid);
    if (it != s.tewOpen.end()) {
        s.tew.add(t >= it->second ? t - it->second : 0);
        s.tewOpen.erase(it);
    }
}

// ------------------------------------------------- begin/end checks

void
SpecOracle::checkBegin(unsigned tid, pm::PmoId pmo, pm::Mode mode,
                       const Observed &o,
                       std::vector<std::string> &out)
{
    PmoState &s = ps[pmo];
    Cycles delta = o.tPost - o.tPre;

    if (cfg.basicBlocking) {
        // The replayer only routes non-blocking begins here.
        Verdict v = spec->onAttach(tid, pmo, o.tPost, mode);
        if (v != Verdict::Performed)
            out.push_back(std::string("spec rejects basic attach: ") +
                          semantics::verdictName(v));
        if (o.attaches != 1)
            out.push_back(fmt("basic begin attach syscalls", 1,
                              o.attaches));
        if (delta != realAttachCost())
            out.push_back(fmt("basic begin cycle charge",
                              realAttachCost(), delta));
        s.basicOwner = static_cast<int>(tid);
        s.procMode = mode;
        openEw(s, o.tPost, o.tPost);
        ++fullBegins;
        return;
    }

    unsigned &d = depth[{tid, pmo}];
    if (++d > 1) {
        ++nestedOps;
        Cycles want = usesCond() ? latency::silentCond
                                 : latency::permSyscall;
        if (o.attaches != 0)
            out.push_back(fmt("nested begin attach syscalls", 0,
                              o.attaches));
        if (delta != want)
            out.push_back(fmt("nested begin cycle charge", want,
                              delta));
        return;
    }

    // Outermost transition: the spec decides real vs. silent. The
    // EW-conscious model runs on the timeline the implementation's
    // decision point sees: the conditional-instruction time for TT,
    // the post-syscall software timestamp for TM.
    Cycles tSpec = usesCond() ? o.tPre + latency::silentCond : o.tPost;
    Verdict v = spec->onAttach(tid, pmo, tSpec, mode);
    bool real = v == Verdict::Performed;
    if (v != Verdict::Performed && v != Verdict::Silent)
        out.push_back(std::string("spec rejects begin: ") +
                      semantics::verdictName(v));

    std::uint64_t wantAtt = real ? 1 : 0;
    Cycles wantDelta =
        real ? realAttachCost()
             : (usesCond() ? latency::silentCond : latency::permSyscall);
    if (o.attaches != wantAtt)
        out.push_back(fmt("begin attach syscalls", wantAtt,
                          o.attaches));
    if (o.detaches != 0)
        out.push_back(fmt("begin detach syscalls", 0, o.detaches));
    if (delta != wantDelta)
        out.push_back(fmt("begin cycle charge", wantDelta, delta));

    if (real) {
        openEw(s, o.tPre + latency::silentCond, o.tPost);
        ++fullBegins;
    } else {
        ++silentBegins;
        s.everSeen = true;
    }
    grantMirror(s, tid, mode, o.tPost);
}

void
SpecOracle::checkEnd(unsigned tid, pm::PmoId pmo, const Observed &o,
                     std::vector<std::string> &out)
{
    PmoState &s = ps[pmo];
    Cycles delta = o.tPost - o.tPre;
    Cycles realCost = latency::detachSyscall + latency::tlbInvalidate +
                      (usesCond() ? latency::silentCond : 0);

    if (cfg.basicBlocking) {
        Verdict v = spec->onDetach(tid, pmo, o.tPre);
        if (v != Verdict::Performed)
            out.push_back(std::string("spec rejects basic detach: ") +
                          semantics::verdictName(v));
        if (o.detaches != 1)
            out.push_back(fmt("basic end detach syscalls", 1,
                              o.detaches));
        if (delta != realCost)
            out.push_back(fmt("basic end cycle charge", realCost,
                              delta));
        // Close before dropping the owner: the runtime clears its
        // external hold after the detach, so the blame tail of a
        // basic end (the detach syscall span included) is app_hold.
        closeEw(s, o.tPost);
        s.basicOwner = -1;
        ++fullEnds;
        // The detach wakes every thread blocked on this PMO.
        for (auto &b : blockedOn)
            if (b == static_cast<int>(pmo))
                b = -1;
        return;
    }

    unsigned &d = depth[{tid, pmo}];
    if (--d > 0) {
        ++nestedOps;
        Cycles want = usesCond() ? latency::silentCond
                                 : latency::permSyscall;
        if (o.detaches != 0)
            out.push_back(fmt("nested end detach syscalls", 0,
                              o.detaches));
        if (delta != want)
            out.push_back(fmt("nested end cycle charge", want, delta));
        return;
    }

    // Outermost: thread permission is revoked at the decision point
    // (conditional-instruction time for TT, call time for TM).
    Cycles tDec = usesCond() ? o.tPre + latency::silentCond : o.tPre;
    Verdict v = spec->onDetach(tid, pmo, tDec);
    bool real = v == Verdict::Performed;
    if (v != Verdict::Performed && v != Verdict::Silent)
        out.push_back(std::string("spec rejects end: ") +
                      semantics::verdictName(v));

    std::uint64_t wantDet = real ? 1 : 0;
    Cycles wantDelta =
        real ? realCost
             : (usesCond() ? latency::silentCond : latency::permSyscall);
    if (o.detaches != wantDet)
        out.push_back(fmt("end detach syscalls", wantDet, o.detaches));
    if (o.attaches != 0)
        out.push_back(fmt("end attach syscalls", 0, o.attaches));
    if (delta != wantDelta)
        out.push_back(fmt("end cycle charge", wantDelta, delta));

    revokeMirror(s, tid, tDec);
    if (real) {
        closeEw(s, o.tPost);
        ++fullEnds;
    } else {
        ++silentEnds;
    }
}

void
SpecOracle::checkManualBegin(unsigned tid, pm::PmoId pmo,
                             pm::Mode mode, const Observed &o,
                             std::vector<std::string> &out)
{
    PmoState &s = ps[pmo];
    Verdict v = spec->onAttach(tid, pmo, o.tPost, mode);
    if (v != Verdict::Performed)
        out.push_back(std::string("spec rejects manual attach: ") +
                      semantics::verdictName(v));
    if (o.attaches != 1)
        out.push_back(fmt("manual begin attach syscalls", 1,
                          o.attaches));
    if (o.tPost - o.tPre != realAttachCost())
        out.push_back(fmt("manual begin cycle charge",
                          realAttachCost(), o.tPost - o.tPre));
    s.procMode = mode;
    s.manualHeld = true;
    openEw(s, o.tPost, o.tPost);
    ++fullBegins;
}

void
SpecOracle::checkManualEnd(unsigned tid, pm::PmoId pmo,
                           const Observed &o,
                           std::vector<std::string> &out)
{
    PmoState &s = ps[pmo];
    Verdict v = spec->onDetach(tid, pmo, o.tPre);
    if (v != Verdict::Performed)
        out.push_back(std::string("spec rejects manual detach: ") +
                      semantics::verdictName(v));
    if (o.detaches != 1)
        out.push_back(fmt("manual end detach syscalls", 1,
                          o.detaches));
    Cycles want = latency::detachSyscall + latency::tlbInvalidate;
    if (o.tPost - o.tPre != want)
        out.push_back(fmt("manual end cycle charge", want,
                          o.tPost - o.tPre));
    closeEw(s, o.tPost); // before the hold drops, as in the runtime
    s.manualHeld = false;
    ++fullEnds;
}

void
SpecOracle::noteBlocked(unsigned tid, pm::PmoId pmo,
                        std::vector<std::string> &out)
{
    if (!cfg.basicBlocking) {
        out.push_back("non-basic scheme blocked a region begin");
        return;
    }
    blockedOn.at(tid) = static_cast<int>(pmo);
}

// ----------------------------------------------------------- access

core::AccessOutcome
SpecOracle::expectedAccess(unsigned tid, pm::PmoId pmo,
                           bool write) const
{
    auto it = ps.find(pmo);
    if (it == ps.end() || !it->second.mapped)
        return core::AccessOutcome::NoMapping;
    const PmoState &s = it->second;
    if (!pm::modeAllows(s.procMode, write))
        return core::AccessOutcome::NoProcessPerm;
    if (cfg.threadPerms) {
        auto h = s.holders.find(tid);
        if (h == s.holders.end() || !pm::modeAllows(h->second, write))
            return core::AccessOutcome::NoThreadPerm;
    }
    return core::AccessOutcome::Ok;
}

void
SpecOracle::checkAccessVerdict(unsigned tid, pm::PmoId pmo, bool write,
                               Cycles t, core::AccessOutcome actual,
                               std::vector<std::string> &out)
{
    Verdict v = spec->onAccess(tid, pmo, t, write);
    bool coherent = true;
    using AO = core::AccessOutcome;
    switch (spec->kind()) {
      case SemanticsKind::EwConscious:
        coherent = (v == Verdict::SegFault) == (actual == AO::NoMapping)
                   && (v == Verdict::Valid) == (actual == AO::Ok);
        break;
      case SemanticsKind::Outermost:
        // The outermost model carries no per-thread state: it can
        // only arbitrate mapped vs. unmapped.
        coherent = (v == Verdict::SegFault) == (actual == AO::NoMapping);
        break;
      case SemanticsKind::Basic:
        coherent = (v == Verdict::Invalid) == (actual == AO::NoMapping);
        break;
      default:
        break;
    }
    if (!coherent) {
        std::ostringstream os;
        os << "spec access verdict " << semantics::verdictName(v)
           << " incoherent with runtime outcome "
           << core::accessOutcomeName(actual);
        out.push_back(os.str());
    }
}

// ----------------------------------------------------------- sweeps

std::vector<PlannedSweep>
SpecOracle::planSweep(Cycles now, std::vector<std::string> &out)
{
    std::vector<PlannedSweep> plan;
    for (auto &[pmo, s] : ps) {
        if (!s.mapped || now < s.swLast + cfg.ewTarget)
            continue;
        // Exact mirror of the runtime's idle test (holders == 0):
        // basic counts its exclusive owner, MM its manual span, the
        // lowered schemes their thread-permission holders. Idle and
        // expired means full detach regardless of insertion mode.
        bool held = cfg.basicBlocking
                        ? s.basicOwner != -1
                        : !s.holders.empty() || s.manualHeld;
        plan.push_back({pmo, !held});
    }

    if (spec->kind() == SemanticsKind::EwConscious) {
        // The spec model has its own sweeper; its decisions must
        // match the mirror's plan exactly.
        auto sp = spec->onSweep(now);
        bool match = sp.size() == plan.size();
        for (std::size_t i = 0; match && i < sp.size(); ++i)
            match = sp[i].pmo == plan[i].pmo &&
                    sp[i].detached == plan[i].detach;
        if (!match) {
            std::ostringstream os;
            os << "spec onSweep(" << now << ") disagrees with mirror ("
               << sp.size() << " vs " << plan.size() << " actions)";
            out.push_back(os.str());
        }
    }
    return plan;
}

void
SpecOracle::applySweepDetach(pm::PmoId pmo, Cycles closeAt)
{
    closeEw(ps[pmo], closeAt);
    ++sweepDetaches;
}

void
SpecOracle::applySweepRandomize(pm::PmoId pmo, Cycles now)
{
    PmoState &s = ps[pmo];
    blameClose(s, now >= s.ewOpen ? now : s.ewOpen);
    s.ew.add(now >= s.ewOpen ? now - s.ewOpen : 0);
    s.ewOpen = now;
    s.swLast = now;
    blameOpen(s, now);
}

void
SpecOracle::checkSweepInvariant(Cycles now,
                                std::vector<std::string> &out) const
{
    for (const auto &[pmo, s] : ps) {
        if (s.mapped && now >= s.swLast + cfg.ewTarget) {
            std::ostringstream os;
            os << "PMO " << pmo << " outlived the EW target across a "
               << "sweep at " << now << " (window keyed at "
               << s.swLast << ")";
            out.push_back(os.str());
        }
    }
}

// ------------------------------------------------ crash / recovery

void
SpecOracle::noteCrash(Cycles at)
{
    for (auto &[pmo, s] : ps) {
        (void)pmo;
        // Revoke thread windows one by one (tid ascending, like the
        // runtime's crash path) with each close clamped to the
        // window's own opening edge; every revoke resolves a blame
        // span while the later tids still count as holding.
        for (auto it = s.tewOpen.begin(); it != s.tewOpen.end();) {
            Cycles since = it->second;
            if (s.mapped)
                blameFlush(s, at >= since ? at : since);
            s.tew.add(at >= since ? at - since : 0);
            it = s.tewOpen.erase(it);
        }
        s.holders.clear();
        if (s.mapped)
            closeEw(s, at);
        s.basicOwner = -1;
        s.manualHeld = false;
    }
    depth.clear();
    for (auto &b : blockedOn)
        b = -1;
    // The restarted process begins with a fresh semantics model.
    spec = semantics::AttachSemantics::make(specKindFor(cfg),
                                            cfg.ewTarget);
}

// ------------------------------------------------------- end of run

void
SpecOracle::finalize(Cycles tEnd)
{
    for (auto &[pmo, s] : ps) {
        (void)pmo;
        if (s.mapped) {
            // Blame first: at the final close the still-open thread
            // windows must count as holding (the tracker's finalize
            // closes the process window before revoking threads).
            blameClose(s, tEnd >= s.ewOpen ? tEnd : s.ewOpen);
            s.ew.add(tEnd >= s.ewOpen ? tEnd - s.ewOpen : 0);
        }
        for (auto &[tid, since] : s.tewOpen) {
            (void)tid;
            s.tew.add(tEnd >= since ? tEnd - since : 0);
        }
        s.tewOpen.clear();
    }
}

const Summary *
SpecOracle::ewSummary(pm::PmoId pmo) const
{
    auto it = ps.find(pmo);
    return it == ps.end() ? nullptr : &it->second.ew;
}

const Summary *
SpecOracle::tewSummary(pm::PmoId pmo) const
{
    auto it = ps.find(pmo);
    return it == ps.end() ? nullptr : &it->second.tew;
}

Cycles
SpecOracle::blameTotal(pm::PmoId pmo, semantics::BlameCause c) const
{
    auto it = ps.find(pmo);
    return it == ps.end()
               ? 0
               : it->second.blame[static_cast<unsigned>(c)];
}

std::vector<pm::PmoId>
SpecOracle::pmosSeen() const
{
    std::vector<pm::PmoId> out;
    for (const auto &[pmo, s] : ps)
        if (s.everSeen)
            out.push_back(pmo);
    return out;
}

// ----------------------------------------------------- state probes

bool
SpecOracle::mappedView(pm::PmoId pmo) const
{
    auto it = ps.find(pmo);
    return it != ps.end() && it->second.mapped;
}

bool
SpecOracle::holdsView(unsigned tid, pm::PmoId pmo) const
{
    auto it = ps.find(pmo);
    return it != ps.end() && it->second.holders.count(tid) > 0;
}

std::size_t
SpecOracle::holderCountView(pm::PmoId pmo) const
{
    auto it = ps.find(pmo);
    return it == ps.end() ? 0 : it->second.holders.size();
}

double
SpecOracle::expectedSilentFraction() const
{
    switch (cfg.scheme) {
      case core::Scheme::TT: {
        // With the CB: cases 2,3 (silent attach) + 4,6 (partial /
        // delayed detach) over every CB-visited outermost op. The
        // "+Cond" ablation counts its software ratio on the attach
        // side only (cond_silent_nocb / cond_*_nocb).
        std::uint64_t silent = cfg.windowCombining
                                   ? silentBegins + silentEnds
                                   : silentBegins;
        std::uint64_t total = cfg.windowCombining
                                  ? silent + fullBegins + fullEnds
                                  : silentBegins + fullBegins;
        return total ? static_cast<double>(silent) /
                           static_cast<double>(total)
                     : 0.0;
      }
      case core::Scheme::TM: {
        if (cfg.basicBlocking || cfg.insertion != core::Insertion::Auto)
            return 0.0;
        // perm_syscalls (silent + nested lowered calls) over every
        // kernel entry that touches permissions or mappings; the
        // sweeper's delayed detaches enter the denominator too.
        std::uint64_t silent =
            silentBegins + silentEnds + nestedOps;
        std::uint64_t total =
            silent + fullBegins + fullEnds + sweepDetaches;
        return total ? static_cast<double>(silent) /
                           static_cast<double>(total)
                     : 0.0;
      }
      default:
        return 0.0;
    }
}

} // namespace check
} // namespace terp
