/**
 * @file
 * Divergence minimization: greedy event deletion to a fixpoint.
 *
 * Because the replayer skips ops that are ill-formed in the state a
 * run actually reaches, every subsequence of a schedule is itself a
 * valid schedule — so shrinking needs no repair pass: delete one
 * event, rerun, keep the deletion if the divergence survives.
 */

#ifndef TERP_CHECK_SHRINK_HH
#define TERP_CHECK_SHRINK_HH

#include "check/differ.hh"
#include "check/schedule.hh"
#include "core/config.hh"

namespace terp {
namespace check {

/**
 * Minimize @p s while runSchedule(s, cfg) stays divergent. Returns
 * the shrunken schedule (== @p s when the run is clean or nothing
 * can be deleted).
 */
Schedule shrink(const Schedule &s, const core::RuntimeConfig &cfg);

} // namespace check
} // namespace terp

#endif // TERP_CHECK_SHRINK_HH
