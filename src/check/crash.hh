/**
 * @file
 * Crash-point enumeration: fault-injection + recovery validation for
 * the persistence substrate (the crash-consistency property the PMO
 * abstraction promises, Section II).
 *
 * A baseline run of a workload counts its persist-boundary events
 * (B = every store / clwb / sfence / log-header update). The driver
 * then re-runs the workload B times, arming the controller's fault
 * plan to crash before boundary n for every n in 1..B — covering
 * every distinguishable crash window exactly once — and after each
 * modeled power failure performs Runtime::crash + Runtime::recover
 * and asserts the recovery oracle:
 *
 *   - atomicity: the durable image equals the image after exactly
 *     the transactions whose commit completed (each transaction is
 *     all-or-nothing; an in-flight one is rolled back fully);
 *   - liveness: a probe transaction commits durably after recovery;
 *   - exposure hygiene: recovery attaches are closed by the scheme's
 *     normal idle path (the sweeper) within the window target, no
 *     PMO stays mapped, and the trace audit balances.
 *
 * Enumeration ascends, so the first violation reported is already
 * the earliest failing crash point (the shrunken reproducer).
 */

#ifndef TERP_CHECK_CRASH_HH
#define TERP_CHECK_CRASH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "pm/persist.hh"

namespace terp {
namespace check {

struct CrashOptions
{
    std::string scheme = "mm"; //!< mm | tm | tt | ttnc | basic
    /**
     * bank:     single-PMO transfer ledger with a sum invariant;
     * hashmap:  WHISPER-style chained-bucket inserts (record fields
     *           plus the bucket-head pointer in one transaction);
     * txnest:   nested TxManager transactions transferring across
     *           two PMOs under one flattened lock set, mixed
     *           undo/redo kinds, ~20% inner aborts;
     * txpair:   two threads, disjoint-PMO transactions with
     *           interleaved writes and staggered commits;
     * schedule: a generated fuzz schedule (persistOps on) replayed
     *           with explicit — never RAII — protection bookends.
     */
    std::string workload = "bank";
    std::uint64_t seed = 0; //!< schedule seed / transfer rng seed
    unsigned txns = 12;     //!< bank transfers / hashmap inserts
    unsigned events = 40;   //!< schedule workload length
    Cycles ewTarget = 5 * cyclesPerUs;
};

struct CrashViolation
{
    std::uint64_t point = 0; //!< 1-based boundary; 0 = baseline run
    pm::PersistBoundary kind = pm::PersistBoundary::Store;
    std::string detail;
};

struct CrashResult
{
    std::uint64_t boundaries = 0; //!< B of the uninterrupted run
    std::uint64_t pointsRun = 0;
    std::vector<CrashViolation> violations;

    bool ok() const { return violations.empty(); }
};

/** Crash at every persist boundary of the workload and validate. */
CrashResult enumerateCrashPoints(const CrashOptions &opt);

/** One-object JSON summary of a finished enumeration. */
std::string crashResultJson(const CrashOptions &opt,
                            const CrashResult &r);

} // namespace check
} // namespace terp

#endif // TERP_CHECK_CRASH_HH
