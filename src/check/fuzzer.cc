#include "check/fuzzer.hh"

#include <stdexcept>

#include "check/shrink.hh"

namespace terp {
namespace check {

std::vector<std::string>
allSchemes()
{
    return {"mm", "tm", "tt", "ttnc", "basic"};
}

core::RuntimeConfig
schemeConfig(const std::string &name, Cycles ew)
{
    if (name == "mm")
        return core::RuntimeConfig::mm(ew);
    if (name == "tm")
        return core::RuntimeConfig::tm(ew);
    if (name == "tt")
        return core::RuntimeConfig::tt(ew);
    if (name == "ttnc")
        return core::RuntimeConfig::ttNoCombining(ew);
    if (name == "basic")
        return core::RuntimeConfig::basicSemantics(ew);
    throw std::invalid_argument("unknown scheme: " + name);
}

FuzzResult
fuzz(const FuzzOptions &opt)
{
    FuzzResult res;
    std::vector<std::string> schemes =
        opt.schemes.empty() ? allSchemes() : opt.schemes;

    for (const std::string &scheme : schemes) {
        core::RuntimeConfig cfg =
            schemeConfig(scheme, opt.gen.ewTarget);
        for (unsigned i = 0; i < opt.seeds; ++i) {
            std::uint64_t seed = opt.firstSeed + i;
            Schedule s = generate(seed, cfg, opt.gen);
            DiffResult d = runSchedule(s, cfg);
            ++res.executed;
            if (d.ok)
                continue;

            Divergence div;
            div.scheme = scheme;
            div.seed = seed;
            if (opt.shrink) {
                div.shrunk = shrink(s, cfg);
                div.complaints =
                    runSchedule(div.shrunk, cfg).complaints;
            } else {
                div.shrunk = s;
                div.complaints = d.complaints;
            }
            div.reproducer =
                reproducerSnippet(div.shrunk, scheme, seed);
            res.divergences.push_back(std::move(div));
        }
    }
    return res;
}

} // namespace check
} // namespace terp
