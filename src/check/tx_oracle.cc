#include "check/tx_oracle.hh"

#include <algorithm>

namespace terp {
namespace check {

bool
TxOracle::canWrite(unsigned tid, pm::PmoId pmo) const
{
    auto it = txs.find(tid);
    if (it == txs.end())
        return false;
    if (it->second.aborted)
        return true; // the real write is a charge-free no-op
    return std::binary_search(it->second.locks.begin(),
                              it->second.locks.end(), pmo);
}

TxEffects
TxOracle::onBegin(unsigned tid, std::vector<pm::PmoId> pmos,
                  bool redo)
{
    std::sort(pmos.begin(), pmos.end());
    pmos.erase(std::unique(pmos.begin(), pmos.end()), pmos.end());

    auto it = txs.find(tid);
    if (it != txs.end()) {
        Tx &tx = it->second;
        if (tx.aborted)
            return measure(false, [] {});
        for (pm::PmoId pmo : pmos) {
            auto o = owner_.find(pmo);
            if (o != owner_.end() && o->second != tid)
                return measure(false, [] {});
        }
        for (pm::PmoId pmo : pmos) {
            if (owner_.emplace(pmo, tid).second) {
                tx.locks.insert(
                    std::lower_bound(tx.locks.begin(),
                                     tx.locks.end(), pmo),
                    pmo);
            }
        }
        ++tx.depth;
        return measure(true, [] {}); // nesting is free
    }

    for (pm::PmoId pmo : pmos) {
        auto o = owner_.find(pmo);
        if (o != owner_.end() && o->second != tid)
            return measure(false, [] {});
    }
    Tx tx;
    tx.depth = 1;
    tx.redo = redo;
    tx.locks = pmos;
    tx.anchor = pmos.front();
    for (pm::PmoId pmo : pmos)
        owner_.emplace(pmo, tid);
    TxEffects e = measure(true, [&] {
        if (!redo) {
            // UndoLog::begin: durable header clear.
            mirror.persistentStore(
                pm::Oid(tx.anchor, undoOff).raw);
            mirror.sfence();
        }
        // RedoLog::begin is volatile arming only.
    });
    txs.emplace(tid, std::move(tx));
    return e;
}

TxEffects
TxOracle::onWrite(unsigned tid, std::uint64_t raw,
                  std::uint64_t value)
{
    Tx &tx = txs.at(tid);
    if (tx.aborted)
        return measure(false, [] {});

    auto pos = std::find(tx.entries.begin(), tx.entries.end(), raw);
    std::uint64_t logOff = tx.redo ? redoOff : undoOff;
    TxEffects e = measure(true, [&] {
        if (pos == tx.entries.end()) {
            std::uint64_t i = tx.entries.size();
            mirror.persistentStore(
                entryRaw(tx.anchor, logOff, i, 0));
            mirror.persistentStore(
                entryRaw(tx.anchor, logOff, i, 1));
            if (!tx.redo) {
                // Undo publishes each record durably before the
                // data update; redo leaves the record unfenced.
                mirror.sfence();
                mirror.persistentStore(
                    pm::Oid(tx.anchor, undoOff).raw);
                mirror.sfence();
            }
            tx.entries.push_back(raw);
        } else if (tx.redo) {
            // Repeat store: redo updates the record's value word in
            // place (persistently, unfenced).
            std::uint64_t i = static_cast<std::uint64_t>(
                pos - tx.entries.begin());
            mirror.persistentStore(
                entryRaw(tx.anchor, logOff, i, 1));
        }
        // Undo stores the data in place; redo only buffers.
        if (!tx.redo)
            mirror.store(raw);
    });
    tx.values[raw] = value;
    return e;
}

void
TxOracle::simulateUndoCommit(Tx &tx)
{
    // UndoLog::commit: one write-back per distinct data line (in
    // write-set order), fence, durable header clear.
    std::vector<std::uint64_t> lines;
    for (std::uint64_t raw : tx.entries) {
        std::uint64_t line = pm::lineKeyOf(raw);
        if (std::find(lines.begin(), lines.end(), line) ==
            lines.end()) {
            lines.push_back(line);
            mirror.clwb(raw);
        }
    }
    mirror.sfence();
    mirror.persistentStore(pm::Oid(tx.anchor, undoOff).raw);
    mirror.sfence();
}

void
TxOracle::simulateRedoCommit(Tx &tx)
{
    if (tx.entries.empty())
        return; // nothing logged: commit is free
    // RedoLog::commit: drain the records, durable commit record,
    // in-place apply + write-back, durable retire.
    mirror.sfence();
    mirror.persistentStore(pm::Oid(tx.anchor, redoOff).raw);
    mirror.sfence();
    std::vector<std::uint64_t> lines;
    for (std::uint64_t raw : tx.entries)
        mirror.store(raw);
    for (std::uint64_t raw : tx.entries) {
        std::uint64_t line = pm::lineKeyOf(raw);
        if (std::find(lines.begin(), lines.end(), line) ==
            lines.end()) {
            lines.push_back(line);
            mirror.clwb(raw);
        }
    }
    mirror.sfence();
    mirror.persistentStore(pm::Oid(tx.anchor, redoOff).raw);
    mirror.sfence();
}

TxEffects
TxOracle::onCommit(unsigned tid)
{
    auto it = txs.find(tid);
    Tx &tx = it->second;
    if (--tx.depth > 0)
        return measure(!tx.aborted, [] {});

    bool healthy = !tx.aborted;
    TxEffects e = measure(healthy, [&] {
        if (!healthy)
            return; // rollback already ran at abort
        if (tx.redo)
            simulateRedoCommit(tx);
        else
            simulateUndoCommit(tx);
    });
    if (healthy) {
        for (const auto &[raw, val] : tx.values)
            committed_[raw] = val;
    }
    for (pm::PmoId pmo : tx.locks)
        owner_.erase(pmo);
    txs.erase(it);
    return e;
}

TxEffects
TxOracle::onAbort(unsigned tid)
{
    Tx &tx = txs.at(tid);
    if (tx.aborted)
        return measure(true, [] {});
    TxEffects e = measure(true, [&] {
        if (tx.redo) {
            // RedoLog::abort: one fence retires the unfenced
            // records, iff any were written.
            if (!tx.entries.empty())
                mirror.sfence();
        } else {
            // UndoLog::abort: restore each logged location (plain
            // stores, reverse order), then durable header clear.
            for (std::uint64_t i = tx.entries.size(); i-- > 0;)
                mirror.store(tx.entries[i]);
            mirror.persistentStore(pm::Oid(tx.anchor, undoOff).raw);
            mirror.sfence();
        }
    });
    tx.aborted = true;
    tx.values.clear();
    return e;
}

TxEffects
TxOracle::onTxPut(
    pm::PmoId pmo,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>
        &writes)
{
    TxEffects e = measure(true, [&] {
        // UndoLog::begin.
        mirror.persistentStore(pm::Oid(pmo, undoOff).raw);
        mirror.sfence();
        // Writes, deduped per location.
        std::vector<std::uint64_t> oids;
        for (const auto &[raw, val] : writes) {
            (void)val;
            if (std::find(oids.begin(), oids.end(), raw) ==
                oids.end()) {
                std::uint64_t i = oids.size();
                mirror.persistentStore(entryRaw(pmo, undoOff, i, 0));
                mirror.persistentStore(entryRaw(pmo, undoOff, i, 1));
                mirror.sfence();
                mirror.persistentStore(pm::Oid(pmo, undoOff).raw);
                mirror.sfence();
                oids.push_back(raw);
            }
            mirror.store(raw);
        }
        // Commit.
        std::vector<std::uint64_t> lines;
        for (std::uint64_t raw : oids) {
            std::uint64_t line = pm::lineKeyOf(raw);
            if (std::find(lines.begin(), lines.end(), line) ==
                lines.end()) {
                lines.push_back(line);
                mirror.clwb(raw);
            }
        }
        mirror.sfence();
        mirror.persistentStore(pm::Oid(pmo, undoOff).raw);
        mirror.sfence();
    });
    for (const auto &[raw, val] : writes)
        committed_[raw] = val;
    return e;
}

void
TxOracle::onCrash()
{
    mirror.crash();
    txs.clear();
    owner_.clear();
}

unsigned
TxOracle::depthView(unsigned tid) const
{
    auto it = txs.find(tid);
    return it == txs.end() ? 0 : it->second.depth;
}

bool
TxOracle::abortedView(unsigned tid) const
{
    auto it = txs.find(tid);
    return it != txs.end() && it->second.aborted;
}

int
TxOracle::ownerView(pm::PmoId pmo) const
{
    auto it = owner_.find(pmo);
    return it == owner_.end() ? -1 : static_cast<int>(it->second);
}

std::uint64_t
TxOracle::expectedRead(unsigned tid, std::uint64_t raw) const
{
    auto it = txs.find(tid);
    if (it != txs.end() && !it->second.aborted) {
        auto v = it->second.values.find(raw);
        if (v != it->second.values.end())
            return v->second;
    }
    auto c = committed_.find(raw);
    return c == committed_.end() ? 0 : c->second;
}

} // namespace check
} // namespace terp
