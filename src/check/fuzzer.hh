/**
 * @file
 * The differential fuzzer driver: seed loop x scheme matrix over
 * generate -> replay -> (on divergence) shrink -> reproduce.
 */

#ifndef TERP_CHECK_FUZZER_HH
#define TERP_CHECK_FUZZER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/differ.hh"
#include "check/schedule.hh"
#include "core/config.hh"

namespace terp {
namespace check {

/** CLI scheme names accepted by schemeConfig / terp-fuzz. */
std::vector<std::string> allSchemes();

/**
 * Runtime configuration for a scheme name: "mm", "tm", "tt",
 * "ttnc" (TT without the circular buffer) or "basic" (blocking
 * Basic-semantics ablation). Throws std::invalid_argument on an
 * unknown name.
 */
core::RuntimeConfig schemeConfig(const std::string &name, Cycles ew);

struct FuzzOptions
{
    unsigned seeds = 64;
    std::uint64_t firstSeed = 0;
    bool shrink = true;
    GenParams gen;
    std::vector<std::string> schemes; //!< empty = allSchemes()
};

/** One minimized divergence. */
struct Divergence
{
    std::string scheme;
    std::uint64_t seed = 0;
    std::vector<std::string> complaints; //!< from the shrunken run
    Schedule shrunk;
    std::string reproducer; //!< paste-ready C++ for the shrunken run
};

struct FuzzResult
{
    unsigned executed = 0; //!< schedules replayed (seeds x schemes)
    std::vector<Divergence> divergences;

    bool ok() const { return divergences.empty(); }
};

/** Run the full fuzz matrix. */
FuzzResult fuzz(const FuzzOptions &opt);

} // namespace check
} // namespace terp

#endif // TERP_CHECK_FUZZER_HH
