/**
 * @file
 * The specification oracle: an independent model of what every
 * runtime operation must do, built on the Section-IV semantics
 * models (src/semantics/attach_semantics).
 *
 * Scheme -> spec model mapping:
 *   tt, tm -> EwConsciousSemantics (the chosen semantics; TT feeds
 *             it the circular-buffer timeline, TM the software one)
 *   ttnc   -> OutermostSemantics (without window combining the last
 *             detach is always performed, i.e. pure outermost pairs)
 *   mm, basic -> BasicSemantics (exclusive attach/detach pairs)
 *
 * The oracle additionally mirrors the runtime-visible state the spec
 * models do not carry — permission-matrix mode (with widening),
 * per-thread holder modes, exposure-window open times — and predicts,
 * for every operation, the exact attach/detach syscall counts, the
 * exact cycle charge on the acting thread, the exact access outcome,
 * and the exact EW/TEW window summaries of the whole run.
 */

#ifndef TERP_CHECK_ORACLE_HH
#define TERP_CHECK_ORACLE_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "core/config.hh"
#include "core/runtime.hh"
#include "semantics/attach_semantics.hh"

namespace terp {
namespace check {

/** Observed effects of one runtime op, reported by the replayer. */
struct Observed
{
    Cycles tPre = 0;               //!< acting thread clock before
    Cycles tPost = 0;              //!< acting thread clock after
    std::uint64_t attaches = 0;    //!< attach_syscalls delta
    std::uint64_t detaches = 0;    //!< detach_syscalls delta
};

/** A sweep decision for one PMO, in apply order. */
struct PlannedSweep
{
    pm::PmoId pmo;
    bool detach; //!< false: re-randomize in place
};

class SpecOracle
{
  public:
    SpecOracle(const core::RuntimeConfig &cfg, unsigned threads);

    // ---- pre-execution predicates (the replayer's skip rules) ----

    /** Would this regionEnd/manualEnd be well-formed right now? */
    bool canEnd(unsigned tid, pm::PmoId pmo) const;
    bool canManualBegin(pm::PmoId pmo) const;
    bool canManualEnd(pm::PmoId pmo) const;
    /**
     * Per-thread clocks can lag the thread that opened the current
     * exposure window; a real close issued by such a thread would
     * rewind the runtime's EwTracker (it asserts monotone time).
     * False when the end must be skipped for that reason.
     */
    bool endSafeAt(unsigned tid, pm::PmoId pmo, Cycles now) const;
    /** basic ablation: would this begin block (held by another)? */
    bool willBlock(unsigned tid, pm::PmoId pmo) const;
    /** basic ablation: does the thread own the PMO's region? */
    bool ownsBasic(unsigned tid, pm::PmoId pmo) const;
    bool isBlocked(unsigned tid) const;

    // ---- post-execution checks (append complaints to @p out) ----

    void checkBegin(unsigned tid, pm::PmoId pmo, pm::Mode mode,
                    const Observed &o, std::vector<std::string> &out);
    void checkEnd(unsigned tid, pm::PmoId pmo, const Observed &o,
                  std::vector<std::string> &out);
    void checkManualBegin(unsigned tid, pm::PmoId pmo, pm::Mode mode,
                          const Observed &o,
                          std::vector<std::string> &out);
    void checkManualEnd(unsigned tid, pm::PmoId pmo,
                        const Observed &o,
                        std::vector<std::string> &out);
    /** Record that a basic-scheme begin blocked (no state change). */
    void noteBlocked(unsigned tid, pm::PmoId pmo,
                     std::vector<std::string> &out);

    /** Exact expected outcome of a tryAccess right now. */
    core::AccessOutcome expectedAccess(unsigned tid, pm::PmoId pmo,
                                       bool write) const;
    /**
     * Forward the access to the spec model and complain when its
     * verdict is incoherent with @p actual (coarse mapping; the
     * exact check is expectedAccess vs. the runtime's outcome).
     */
    void checkAccessVerdict(unsigned tid, pm::PmoId pmo, bool write,
                            Cycles t, core::AccessOutcome actual,
                            std::vector<std::string> &out);

    // ---- sweeps ------------------------------------------------------

    /**
     * Which PMOs a sweep at @p now must act on (ascending PMO id;
     * the replayer reorders to the circular buffer's entry order for
     * TT). Cross-checks the spec model's own onSweep where it has
     * one. Does not yet mutate window state: the replayer applies
     * the actions via applySweepDetach/applySweepRandomize with the
     * exact close times its charge simulation computed.
     */
    std::vector<PlannedSweep> planSweep(Cycles now,
                                        std::vector<std::string> &out);
    void applySweepDetach(pm::PmoId pmo, Cycles closeAt);
    void applySweepRandomize(pm::PmoId pmo, Cycles now);
    /** After a sweep no surviving window may exceed the target. */
    void checkSweepInvariant(Cycles now,
                             std::vector<std::string> &out) const;

    // ---- crash / recovery --------------------------------------------

    /**
     * Mirror of Runtime::crash(at): close every open EW/TEW window
     * at @p at, drop all volatile mirror state (holders, owners,
     * nesting, blocked threads) and restart the spec model fresh.
     * The silent/full tallies survive — they are the experiment's
     * measurement state, like the runtime's counters.
     */
    void noteCrash(Cycles at);

    // ---- end of run --------------------------------------------------

    /** Close remaining windows at @p tEnd (mirror of finalize()). */
    void finalize(Cycles tEnd);

    /** Expected window summaries for the whole run. */
    const Summary *ewSummary(pm::PmoId pmo) const;
    const Summary *tewSummary(pm::PmoId pmo) const;
    /** PMOs the oracle ever saw a window for. */
    std::vector<pm::PmoId> pmosSeen() const;

    /**
     * Predicted blame attribution: total cycles per cause for the
     * whole run, computed by an independent copy of the tracker's
     * segment algorithm over the oracle's own mirror state. Only
     * app_hold and sweeper_lag can be nonzero here — the other
     * causes need hooks (serve queueing, txn locks, energy gating)
     * that plain fuzz schedules never install, so the differ also
     * checks the runtime reported zero for them.
     */
    Cycles blameTotal(pm::PmoId pmo, semantics::BlameCause c) const;

    // ---- state probes (cross-checked each op) ------------------------

    bool mappedView(pm::PmoId pmo) const;
    bool holdsView(unsigned tid, pm::PmoId pmo) const;
    std::size_t holderCountView(pm::PmoId pmo) const;
    /** Expected silent fraction of the finished run. */
    double expectedSilentFraction() const;

  private:
    struct PmoState
    {
        bool mapped = false;
        /**
         * The timestamp the runtime's sweep/detach decisions key on:
         * the circular-buffer entry timestamp for TT (conditional
         * decision time of the opening attach), the software
         * lastRealAttach (post-syscall time) for the MERR schemes.
         */
        Cycles swLast = 0;
        Cycles ewOpen = 0; //!< EwTracker open time (post-syscall)
        pm::Mode procMode = pm::Mode::None;
        int basicOwner = -1;
        /**
         * Inside a manualBegin/manualEnd span. The runtime tracks MM
         * spans through the same holders counter as TM, but the
         * oracle's holders map is only fed by grantMirror (thread
         * permissions), which manual spans never touch — so MM needs
         * its own held flag for the sweeper's idle test.
         */
        bool manualHeld = false;
        std::map<unsigned, pm::Mode> holders;
        std::map<unsigned, Cycles> tewOpen;
        Summary ew;
        Summary tew;
        bool everSeen = false;

        // -- blame mirror: independent copy of the tracker's segment
        //    algorithm over this mirror state (end, cause) --
        std::vector<std::pair<Cycles, std::uint8_t>> segs;
        Cycles causeSince = 0; //!< start of the unresolved tail
        Cycles blame[semantics::numBlameCauses] = {};
    };

    core::RuntimeConfig cfg;
    std::unique_ptr<semantics::AttachSemantics> spec;
    std::map<pm::PmoId, PmoState> ps;
    std::map<std::pair<unsigned, pm::PmoId>, unsigned> depth;
    std::vector<int> blockedOn; //!< per tid; -1 = runnable
    /**
     * Silent-fraction bookkeeping. The three schemes aggregate
     * differently: TT over all CB-visited ops (begins + ends), the
     * no-CB ablation over begins only, TM over every kernel entry
     * including nested lowered calls and sweeper detaches.
     */
    std::uint64_t silentBegins = 0;
    std::uint64_t fullBegins = 0;
    std::uint64_t silentEnds = 0;
    std::uint64_t fullEnds = 0;
    std::uint64_t nestedOps = 0;
    std::uint64_t sweepDetaches = 0;

    bool usesCond() const { return cfg.condInstructions; }
    Cycles realAttachCost() const;
    void openEw(PmoState &s, Cycles tCb, Cycles tPost);
    void closeEw(PmoState &s, Cycles t);
    void grantMirror(PmoState &s, unsigned tid, pm::Mode mode,
                     Cycles t);
    void revokeMirror(PmoState &s, unsigned tid, Cycles t);
    /** Blame mirror: open / resolve-tail / truncate-and-tally. */
    void blameOpen(PmoState &s, Cycles t);
    void blameFlush(PmoState &s, Cycles t);
    void blameClose(PmoState &s, Cycles t);
};

} // namespace check
} // namespace terp

#endif // TERP_CHECK_ORACLE_HH
