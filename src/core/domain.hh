/**
 * @file
 * Shard runtime domains — the enabling refactor for terp-serve.
 *
 * Historically every workload hand-assembled the same quartet
 * (Machine, PmoManager, optional PersistDomain, Runtime) and wired
 * the sweeper hook into Machine::run itself. That pattern bakes in
 * two batch-run assumptions a long-lived multi-tenant server cannot
 * make:
 *
 *   1. there is exactly one runtime domain per process, so nothing
 *      states which circular buffer / sweeper / EwTracker /
 *      persistence controller a PMO belongs to — it is "the" one;
 *   2. the sweeper only advances inside Machine::run, so a driver
 *      that steps threads itself (the serve request pipeline) has no
 *      way to fire the hardware timer deterministically.
 *
 * ShardDomain makes the ownership explicit: one instance owns one
 * complete protection stack — its own circular buffer and sweeper
 * (inside its Runtime), its own exposure tracker, its own placement
 * RNG (inside its PmoManager) and its own persistence controller —
 * so a fleet of shards proceeds concurrently with no shared mutable
 * state. Cross-shard coordination is limited, by construction, to
 * merging metrics registries and to whatever simulated-clock
 * agreement the driver imposes (terp-serve uses epoch barriers).
 *
 * The sweeper drive is hoisted here too: runJobs() reproduces the
 * exact Machine::run + hook pattern of the batch harnesses (a
 * 1-shard domain is cycle-identical to the hand-assembled Runtime —
 * held down by tests/test_serve.cc), while sweepTo() exposes the
 * same boundary-by-boundary firing rule to manual drivers.
 */

#ifndef TERP_CORE_DOMAIN_HH
#define TERP_CORE_DOMAIN_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hh"
#include "core/runtime.hh"
#include "pm/persist.hh"
#include "pm/pmo_manager.hh"
#include "sim/machine.hh"

namespace terp {
namespace core {

/** Everything needed to build one shard's runtime domain. */
struct DomainConfig
{
    RuntimeConfig runtime;
    sim::MachineConfig machine;
    /**
     * Seed of the shard's placement RNG (PmoManager). Derive it from
     * (fleet seed, shard id) so shards draw independent streams; a
     * shared RNG would make one shard's attach order perturb
     * another's placements — exactly the hidden-singleton coupling
     * this type exists to rule out.
     */
    std::uint64_t placementSeed = 42;
    /** Shard index within the fleet (labels metrics and traces). */
    unsigned shardId = 0;
    /** Construct a persistence domain and attach it to the runtime. */
    bool persistence = false;
};

/**
 * One shard's complete, self-owned protection stack.
 *
 * Members are constructed machine -> pmos -> persistence -> runtime
 * and destroyed in reverse, so the Runtime's destructor can safely
 * unhook the trace sink from the machine and PMO manager it was
 * built over.
 */
class ShardDomain
{
  public:
    explicit ShardDomain(const DomainConfig &cfg);

    ShardDomain(const ShardDomain &) = delete;
    ShardDomain &operator=(const ShardDomain &) = delete;

    unsigned shardId() const { return id; }

    sim::Machine &machine() { return *mach; }
    pm::PmoManager &pmos() { return *pm; }
    Runtime &runtime() { return *rt; }
    const Runtime &runtime() const { return *rt; }
    pm::PersistDomain *persistence() { return dom.get(); }

    // ---- sweeper drive ----------------------------------------------

    /**
     * Fire the shard's hardware sweep timer at every hookPeriod
     * boundary <= @p t that has not fired yet. Idempotent per
     * boundary; callers may invoke it as often as convenient (before
     * each request, between micro-ops, during a held window) and the
     * tick sequence stays identical — which is what makes the serve
     * pipeline's results independent of host worker count.
     */
    void sweepTo(Cycles t);

    /** The next boundary sweepTo() would fire. */
    Cycles nextSweepTick() const { return nextHook; }

    /**
     * Batch-compatibility drive: Machine::run with the sweeper hook,
     * exactly as the figure harnesses wire it by hand. Jobs run to
     * completion; the domain is NOT finalized (callers may keep
     * issuing work or crash/recover first).
     *
     * Note Machine::run fires the hook from its own boundary cursor;
     * sweepTo()'s cursor is advanced to match afterwards so mixed
     * drivers never double-fire a boundary.
     */
    void runJobs(const std::vector<sim::Job *> &jobs);

    /** Close still-open windows and publish final metrics. */
    void finalize();

    // ---- power cycling ----------------------------------------------

    /**
     * Power-fail the shard at @p at: volatile protection state is
     * dropped via Runtime::crash — windows closed, transactions
     * aborted, every PMO unmapped. The sweep cursor is left alone;
     * the outage's extent is only known at recover() time.
     */
    void crash(Cycles at);

    /**
     * Power restored at @p resumeAt (>= the crash instant): realign
     * the sweep cursor to the first hook boundary after the outage —
     * the sweep timer is hardware and the hardware was off, so
     * boundaries inside the dark period never fired and must not be
     * replayed as a catch-up burst — then replay every pending log
     * on @p tc. Returns the number of logs recovered. Requires a
     * persistence domain.
     */
    unsigned recover(sim::ThreadContext &tc, Cycles resumeAt);

  private:
    unsigned id;
    std::unique_ptr<sim::Machine> mach;
    std::unique_ptr<pm::PmoManager> pm;
    std::unique_ptr<pm::PersistDomain> dom;
    std::unique_ptr<Runtime> rt;
    Cycles nextHook;
    Cycles hookPeriod;
};

} // namespace core
} // namespace terp

#endif // TERP_CORE_DOMAIN_HH
