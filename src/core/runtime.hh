/**
 * @file
 * The protection runtime — the paper's primary contribution glued
 * together: EW-conscious attach/detach semantics realized with the
 * conditional-instruction + circular-buffer architecture (TT), and
 * the MERR baseline paths (MM, TM) for comparison.
 *
 * Workload code marks two kinds of protection points:
 *   - manualBegin/manualEnd: the coarse bookends a MERR programmer
 *     writes by hand;
 *   - regionBegin/regionEnd: the fine-grained points the TERP
 *     compiler inserts (regions bounded by the TEW target).
 * The runtime maps those markers onto real constructs according to
 * the configured scheme, charges all Table II costs to the calling
 * thread, and records exposure windows.
 */

#ifndef TERP_CORE_RUNTIME_HH
#define TERP_CORE_RUNTIME_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/circular_buffer.hh"
#include "arch/mpk.hh"
#include "arch/perm_matrix.hh"
#include "common/stats.hh"
#include "core/config.hh"
#include "metrics/registry.hh"
#include "metrics/sampler.hh"
#include "pm/pmo_manager.hh"
#include "semantics/ew_tracker.hh"
#include "sim/machine.hh"
#include "trace/trace_buffer.hh"

namespace terp {
namespace pm {
class PersistDomain;
class TxManager;
} // namespace pm
namespace core {

/** Result of a guarded region entry. */
enum class GuardResult
{
    Ok,      //!< region entered
    Blocked, //!< basic semantics: wait for the holder's detach
};

/** Outcome of a checked PMO access. */
enum class AccessOutcome
{
    Ok,
    NoMapping,     //!< PMO not attached: segmentation fault
    NoProcessPerm, //!< permission matrix denies the access
    NoThreadPerm,  //!< calling thread's permission is closed
};

const char *accessOutcomeName(AccessOutcome o);

/** Aggregate report of one protected run. */
struct OverheadReport
{
    Cycles work = 0;
    Cycles attach = 0;
    Cycles detach = 0;
    Cycles rand = 0;
    Cycles cond = 0;
    Cycles other = 0;
    Cycles total = 0;

    std::uint64_t attachSyscalls = 0;
    std::uint64_t detachSyscalls = 0;
    std::uint64_t randomizations = 0;
    std::uint64_t condOps = 0;
    double silentFraction = 0.0;
};

/**
 * The runtime. One instance per simulated process/run; owns the
 * protection hardware state and the exposure tracker.
 */
class Runtime
{
  public:
    Runtime(sim::Machine &machine, pm::PmoManager &pmos,
            const RuntimeConfig &config);
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    const RuntimeConfig &config() const { return cfg; }

    // ---- protection constructs -------------------------------------

    /** Manual (MERR-style) bookends; no-ops unless insertion=Manual. */
    void manualBegin(sim::ThreadContext &tc, pm::PmoId pmo,
                     pm::Mode mode);
    void manualEnd(sim::ThreadContext &tc, pm::PmoId pmo);

    /**
     * Compiler-inserted region entry; no-op unless insertion=Auto.
     * May return Blocked under the basic-semantics ablation, in
     * which case the thread has been blocked and the caller must
     * retry after being woken.
     */
    GuardResult regionBegin(sim::ThreadContext &tc, pm::PmoId pmo,
                            pm::Mode mode);
    void regionEnd(sim::ThreadContext &tc, pm::PmoId pmo);

    // ---- data access ------------------------------------------------

    /** Checked, timed PMO access. */
    AccessOutcome tryAccess(sim::ThreadContext &tc, const pm::Oid &oid,
                            bool write);

    /**
     * Checked, timed access through a raw virtual address — the path
     * an attacker-injected pointer takes. Fails with NoMapping when
     * the address is not covered by any attached PMO (e.g. a stale
     * pre-randomization address).
     */
    AccessOutcome tryAccessVaddr(sim::ThreadContext &tc,
                                 std::uint64_t vaddr, bool write);

    /** Checked access that must succeed (panics on a fault). */
    void access(sim::ThreadContext &tc, const pm::Oid &oid, bool write);

    /**
     * Convenience: sequentially access @p bytes starting at @p oid
     * at cache-line granularity (one timed access per line).
     */
    void accessRange(sim::ThreadContext &tc, const pm::Oid &oid,
                     std::uint64_t bytes, bool write);

    // ---- periodic hardware hook --------------------------------------

    /**
     * The sweeper tick (Fig 7a). Call from the Machine's periodic
     * hook. Applies delayed detaches and forced randomizations.
     */
    void onSweep(Cycles now);

    /** Close any still-open windows at end of run. */
    void finalize();

    // ---- crash / recovery --------------------------------------------

    /**
     * Register the persistence domain crash()/recover() operate on.
     * The domain is owned by the caller and must outlive the
     * runtime. Also instantiates the domain's pm::TxManager, so
     * attaching persistence is all it takes for threads (and
     * terp-serve sessions) to issue multi-op transactions via tx().
     */
    void attachPersistence(pm::PersistDomain *domain);
    pm::PersistDomain *persistence() { return dom; }

    /** The transaction manager; null until attachPersistence(). */
    pm::TxManager *tx() { return txm.get(); }

    /**
     * Modeled power failure at time @p at (use the max thread clock
     * so exposure windows never close backwards). All volatile
     * protection state is lost at once: thread permissions, the
     * permission matrix, address-space mappings, circular-buffer
     * residency, region nesting, and blocked waiters. Nobody is
     * charged — power failures don't run syscalls. Host-side
     * measurement state (counters, traces, cache models) survives:
     * it belongs to the experiment, not the machine. Emits a Crash
     * event plus the matching window-closing events so the trace
     * audit stays balanced.
     */
    void crash(Cycles at);

    /**
     * Post-crash recovery pass, run on @p tc (the recovery process's
     * thread): every registered PMO whose durable undo log holds an
     * in-flight transaction is attached (full Table II cost), rolled
     * back, and left for the scheme's normal idle path — the
     * EW-conscious sweeper — to close, so recovery exposure obeys
     * the same window target as any other. PMOs whose redo log holds
     * a durable commit record are rolled *forward* the same way (the
     * commit landed; only the in-place apply may be torn). Returns
     * the number of PMOs recovered.
     */
    unsigned recover(sim::ThreadContext &tc);

    // ---- reporting ---------------------------------------------------

    OverheadReport report() const;
    const semantics::EwTracker &exposure() const { return ew; }
    /**
     * Mutable tracker access for the provenance annotation hooks
     * (tenant labels, hold/idle cause overrides, energy-dark marks,
     * close hooks). The serve and energy layers use this; the hooks
     * only affect attribution, never window accounting.
     */
    semantics::EwTracker &exposureMut() { return ew; }
    const arch::CircularBuffer &circularBuffer() const { return cb; }

    /**
     * Named counter view. Internally the hot paths bump an
     * enum-indexed array (a string-keyed map lookup per region op
     * showed up in profiles); this materializes the familiar
     * CounterSet on demand, with the same keys and the same
     * only-touched-counters-present contents as before.
     */
    const CounterSet &counters() const;

    /**
     * The event sink, shared so it can outlive the runtime (run
     * results keep it for export/audit). Null unless
     * config.traceEnabled.
     */
    std::shared_ptr<trace::TraceSink> traceSink() const { return sink; }

    /**
     * The run's metrics registry, shared so run results can keep it
     * past the runtime's lifetime. Null when metrics are disabled
     * (config.metricsEnabled=false or TERP_METRICS=off). Exposure
     * histograms stream in live; the counter/gauge roll-up
     * (runtime/cb/pm/sim groups) lands at finalize().
     */
    std::shared_ptr<metrics::Registry> metricsRegistry() const
    {
        return reg;
    }

    /** Is the PMO currently mapped? */
    bool mapped(pm::PmoId pmo) const;

    /** The PMO manager this runtime protects. */
    pm::PmoManager &pmoManager() { return pm_; }
    const pm::PmoManager &pmoManager() const { return pm_; }

    /** Does the thread hold open permission (TT schemes)? */
    bool threadHolds(unsigned tid, pm::PmoId pmo) const;

  private:
    sim::Machine &mach;
    pm::PmoManager &pm_;
    RuntimeConfig cfg;

    arch::CircularBuffer cb;
    arch::ThreadDomains domains;
    arch::PermissionMatrix matrix;
    semantics::EwTracker ew;
    std::shared_ptr<trace::TraceSink> sink; //!< null = tracing off
    pm::PersistDomain *dom = nullptr; //!< null = no crash/recovery
    std::unique_ptr<pm::TxManager> txm; //!< created with dom

    /**
     * Metrics registry and cached hot-path instruments (null when
     * metrics are off, mirroring the trace sink's null-check
     * pattern). Instruments record host-side state only — they
     * never charge simulated cycles — so enabling them cannot
     * perturb simulation results.
     */
    std::shared_ptr<metrics::Registry> reg;
    metrics::Counter *mSweepTicks = nullptr;
    metrics::Counter *mSweepForceDetach = nullptr;
    metrics::Counter *mSweepRandomize = nullptr;
    /**
     * Mapped PMOs examined by MERR sweeper ticks. host.* namespace:
     * it measures simulator work (the O(active) tick guarantee the
     * scan-count test asserts), not simulated behaviour, and host
     * instruments stay out of the posture goldens.
     */
    metrics::Counter *mSweepPmoScans = nullptr;
    metrics::Gauge *mCbOccupancy = nullptr;
    metrics::LogHistogram *mSweepTickNs = nullptr;
    std::unique_ptr<metrics::Sampler> sampler;
    std::uint64_t sweepTickSeq = 0;

    /** Final counter/gauge roll-up into the registry (finalize()). */
    void publishMetrics();

    /**
     * Counters bumped on the region-entry/exit and syscall paths.
     * These fire millions of times per run, so they are a dense
     * enum-indexed array; counters() translates to named keys.
     */
    enum Counter : unsigned
    {
        ctrAttachSyscalls,
        ctrDetachSyscalls,
        ctrRandomizations,
        ctrCondOps,
        ctrNestedRegions,
        ctrCondSilentNocb,
        ctrCondFullNocb,
        ctrPermSyscalls,
        ctrBasicBlocks,
        numCounters,
    };
    std::uint64_t ctr[numCounters] = {};
    mutable CounterSet counts; //!< materialized on demand

    /** Software view of mapped PMOs (for schemes without the CB). */
    struct MapState
    {
        bool mapped = false;
        Cycles lastRealAttach = 0;
        unsigned holders = 0; //!< threads inside regions (TM/ablation)
        unsigned ownerTid = 0; //!< basic-semantics exclusive owner
        pm::Mode grantedMode = pm::Mode::None;
        /**
         * Generation counter, bumped on every sweeper-relevant
         * mutation (attach, detach, window reopen — i.e. every write
         * of `mapped` or `lastRealAttach`). The sweeper caches the
         * EW deadline below and revalidates it only when the
         * generation moved, so a tick over a PMO untouched since the
         * last scan is a single cached compare. gen starts ahead of
         * scanGen so the first scan always refreshes.
         */
        std::uint32_t gen = 1;
        std::uint32_t scanGen = 0;
        Cycles sweepDeadline = 0; //!< lastRealAttach + ewTarget
    };
    /**
     * Indexed by PmoId (small sequential ints); a default-initialized
     * entry (mapped=false, holders=0) is indistinguishable from a PMO
     * the old std::map had never seen, and iterating the vector
     * visits PMOs in the same ascending-id order the map did.
     */
    std::vector<MapState> maps;
    MapState &mapState(pm::PmoId pmo);

    /**
     * Dense active-set index over `maps`: bit pmo is set iff
     * maps[pmo].mapped. The sweeper and crash paths iterate set bits
     * (ascending, so visit order matches the plain vector walk), so
     * an idle fleet tick is O(mapped PMOs) rather than O(all PMOs
     * ever seen). Grown in lockstep with `maps` by mapState().
     */
    std::vector<std::uint64_t> mappedBits;
    void
    setMappedBit(pm::PmoId pmo, bool on)
    {
        std::uint64_t &w = mappedBits[pmo >> 6];
        const std::uint64_t bit = 1ULL << (pmo & 63);
        w = on ? (w | bit) : (w & ~bit);
    }

    /**
     * Per-thread region nesting depth, dense [tid][pmo]. Dynamic
     * nesting arises from function composition (a callee with its
     * own pairs invoked inside a caller's pair); the EW-conscious
     * lowering makes inner pairs silent, so only the 0->1 / 1->0
     * transitions touch the permission hardware.
     */
    std::vector<std::vector<unsigned>> regionDepth;
    unsigned &depthSlot(unsigned tid, pm::PmoId pmo);

    bool finalized = false;

    // Implementation helpers.
    void doRealAttach(sim::ThreadContext &tc, pm::PmoId pmo,
                      pm::Mode mode);
    void doRealDetach(sim::ThreadContext &tc, pm::PmoId pmo);
    /**
     * Real detach with optional cycle attribution: with @p tc null
     * (post-run drain, no live thread) the mapping/tracker work is
     * done at time @p at and nobody is charged.
     */
    void doRealDetachAt(sim::ThreadContext *tc, pm::PmoId pmo,
                        Cycles at);
    void doRandomize(pm::PmoId pmo, Cycles at);
    void grantThread(sim::ThreadContext &tc, pm::PmoId pmo,
                     pm::Mode mode);
    void revokeThread(sim::ThreadContext &tc, pm::PmoId pmo);
    /** Earliest-clock live thread, or null when every thread done. */
    sim::ThreadContext *minClockThread();

    void ttRegionBegin(sim::ThreadContext &tc, pm::PmoId pmo,
                       pm::Mode mode);
    void ttRegionEnd(sim::ThreadContext &tc, pm::PmoId pmo);
    void tmRegionBegin(sim::ThreadContext &tc, pm::PmoId pmo,
                       pm::Mode mode);
    void tmRegionEnd(sim::ThreadContext &tc, pm::PmoId pmo);
    GuardResult basicRegionBegin(sim::ThreadContext &tc, pm::PmoId pmo,
                                 pm::Mode mode);
    void basicRegionEnd(sim::ThreadContext &tc, pm::PmoId pmo);

    /** Emit on the calling thread's track (no-op when tracing off). */
    void
    emit(const sim::ThreadContext &tc, trace::EventKind k,
         pm::PmoId pmo, std::uint64_t arg = 0)
    {
        if (sink)
            sink->emit(tc.tid(), k, tc.now(), pmo, arg);
    }

    /** Emit on the sweeper pseudo-track at an explicit time. */
    void
    emitSweeper(trace::EventKind k, Cycles ts, pm::PmoId pmo,
                std::uint64_t arg = 0)
    {
        if (sink)
            sink->emit(trace::TraceSink::sweeperTid, k, ts, pmo, arg);
    }
};

/**
 * RAII helper for a compiler-inserted region. Under the
 * basic-blocking ablation the entry may return Blocked; the
 * cooperative simulator cannot yield inside a constructor, so the
 * guard records that the region was never entered, skips the end in
 * its destructor, and exposes entered() so the caller can bail out
 * (and retry after the scheduler wakes the thread).
 */
class RegionGuard
{
  public:
    RegionGuard(Runtime &rt, sim::ThreadContext &tc, pm::PmoId pmo,
                pm::Mode mode)
        : runtime(rt), thread(tc), id(pmo),
          didEnter(rt.regionBegin(tc, pmo, mode) != GuardResult::Blocked)
    {
    }

    ~RegionGuard()
    {
        if (didEnter)
            runtime.regionEnd(thread, id);
    }

    /** False when the begin blocked and the region was not entered. */
    bool entered() const { return didEnter; }

    RegionGuard(const RegionGuard &) = delete;
    RegionGuard &operator=(const RegionGuard &) = delete;

  private:
    Runtime &runtime;
    sim::ThreadContext &thread;
    pm::PmoId id;
    bool didEnter;
};

} // namespace core
} // namespace terp

#endif // TERP_CORE_RUNTIME_HH
