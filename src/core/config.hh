/**
 * @file
 * Scheme configurations for the evaluation (Section VI):
 *
 *  - MM: MERR insertion + MERR architecture. Manually inserted
 *    attach/detach executed fully as system calls, EW target 40 us.
 *  - TM: TERP insertion + MERR architecture. Compiler-inserted
 *    conditional attach/detach, but every call is a full system call.
 *  - TT: TERP insertion + TERP architecture. Conditional
 *    attach/detach instructions + circular-buffer window combining.
 *
 * Ablations for Fig 11: Basic semantics (threads serialize on a
 * process-wide attach) and "+Cond" (conditional instructions without
 * the circular buffer).
 */

#ifndef TERP_CORE_CONFIG_HH
#define TERP_CORE_CONFIG_HH

#include <cstddef>
#include <string>

#include "common/units.hh"

namespace terp {
namespace core {

/** Top-level protection scheme. */
enum class Scheme
{
    Unprotected, //!< no protection; the overhead baseline
    MM,          //!< MERR insertion on MERR architecture
    TM,          //!< TERP insertion on MERR architecture
    TT,          //!< TERP insertion on TERP architecture
};

const char *schemeName(Scheme s);

struct RuntimeConfig;

/**
 * Short lowercase tag naming the *configured* scheme, including the
 * Fig-11 ablations the Scheme enum alone cannot distinguish:
 * "unprotected", "mm", "tm", "tt", "ttnc" (TT without the circular
 * buffer) or "basic" (blocking ablation). Matches the terp-trace /
 * terp-stats CLI spellings; used as the `scheme` metrics label.
 */
const char *schemeTag(const RuntimeConfig &cfg);

/** Which insertion points drive attach/detach. */
enum class Insertion
{
    None,   //!< no constructs at all
    Manual, //!< coarse, manually placed bookends (MERR style)
    Auto,   //!< compiler/region-granularity conditional constructs
};

/** Full runtime configuration. */
struct RuntimeConfig
{
    Scheme scheme = Scheme::Unprotected;
    Insertion insertion = Insertion::None;

    /** Process-level exposure-window target (L in the semantics). */
    Cycles ewTarget = target::defaultEw;
    /** Thread exposure-window target used by automatic insertion. */
    Cycles tewTarget = target::defaultTew;

    /**
     * Exposure SLO thresholds (0 = off, the batch default): every
     * closed EW/TEW longer than these counts as a violation in the
     * runtime's EwTracker and, with metrics on, in the
     * `exposure.slo_violations{win=...}` counters. Distinct from the
     * targets above: the targets steer the sweeper, the SLOs only
     * judge the result — terp-serve alerts on them per shard.
     */
    Cycles ewSlo = 0;
    Cycles tewSlo = 0;

    /** Conditional instructions available (27-cycle silent path). */
    bool condInstructions = false;
    /** Circular-buffer window combining + sweeper. */
    bool windowCombining = false;
    /** MPK-style per-thread permission lowering (EW-conscious). */
    bool threadPerms = false;
    /**
     * Basic-semantics ablation: a thread attaching an attached PMO
     * must wait for the detach (Fig 11 "Basic semantics" bars).
     */
    bool basicBlocking = false;
    /** Randomize PMO placement at every real attach. */
    bool randomizeOnAttach = true;

    /**
     * Event tracing (src/trace). Off by default: with the switch off
     * the runtime allocates no sink and every emission site is a
     * null-pointer check, so timing and cycle totals are bit-for-bit
     * identical to an untraced build. Tracing never charges
     * simulated cycles either way.
     */
    bool traceEnabled = false;
    /** Per-thread trace ring capacity, in events. */
    std::size_t traceCapacity = 1u << 16;

    /**
     * Metrics registry (src/metrics). On by default: recording never
     * charges simulated cycles and never prints, so cycle totals and
     * harness stdout are bit-for-bit identical either way (held down
     * by tests/test_bench_harness.cc). Set false — or export
     * TERP_METRICS=off — for a hot path where every instrument
     * pointer is null and each site costs one predictable branch.
     */
    bool metricsEnabled = true;
    /**
     * Snapshot-sampler period in cycles; 0 disables the time-series.
     * Sampling happens at sweeper-tick granularity, so periods below
     * the machine's hookPeriod sample every tick.
     */
    Cycles metricsSamplePeriod = 0;

    /** Fluent helper: same config with tracing switched on. */
    RuntimeConfig
    withTrace(std::size_t capacity = 1u << 16) const
    {
        RuntimeConfig c = *this;
        c.traceEnabled = true;
        c.traceCapacity = capacity;
        return c;
    }

    /** Fluent helper: metrics with a snapshot time-series. */
    RuntimeConfig
    withMetricsSampling(Cycles period) const
    {
        RuntimeConfig c = *this;
        c.metricsEnabled = true;
        c.metricsSamplePeriod = period;
        return c;
    }

    /** Fluent helper: same config with exposure SLO thresholds. */
    RuntimeConfig
    withExposureSlo(Cycles ew_slo, Cycles tew_slo) const
    {
        RuntimeConfig c = *this;
        c.ewSlo = ew_slo;
        c.tewSlo = tew_slo;
        return c;
    }

    /** Fluent helper: same config with metrics switched off. */
    RuntimeConfig
    withoutMetrics() const
    {
        RuntimeConfig c = *this;
        c.metricsEnabled = false;
        return c;
    }

    static RuntimeConfig unprotected();
    static RuntimeConfig mm(Cycles ew = target::defaultEw);
    static RuntimeConfig tm(Cycles ew = target::defaultEw,
                            Cycles tew = target::defaultTew);
    static RuntimeConfig tt(Cycles ew = target::defaultEw,
                            Cycles tew = target::defaultTew);
    /** TT without the circular buffer ("+Cond" ablation). */
    static RuntimeConfig ttNoCombining(Cycles ew = target::defaultEw,
                                       Cycles tew = target::defaultTew);
    /** Automatic insertion under Basic semantics (ablation). */
    static RuntimeConfig basicSemantics(Cycles ew = target::defaultEw);

    std::string describe() const;
};

} // namespace core
} // namespace terp

#endif // TERP_CORE_CONFIG_HH
