#include "core/domain.hh"

#include "common/logging.hh"

namespace terp {
namespace core {

ShardDomain::ShardDomain(const DomainConfig &cfg)
    : id(cfg.shardId),
      mach(std::make_unique<sim::Machine>(cfg.machine)),
      pm(std::make_unique<pm::PmoManager>(cfg.placementSeed)),
      dom(cfg.persistence ? std::make_unique<pm::PersistDomain>()
                          : nullptr),
      rt(std::make_unique<Runtime>(*mach, *pm, cfg.runtime)),
      nextHook(cfg.machine.hookPeriod),
      hookPeriod(cfg.machine.hookPeriod)
{
    TERP_ASSERT(hookPeriod > 0, "ShardDomain: zero hook period");
    if (dom)
        rt->attachPersistence(dom.get());
    if (auto reg = rt->metricsRegistry())
        reg->setLabel("shard", std::to_string(id));
}

void
ShardDomain::sweepTo(Cycles t)
{
    while (nextHook <= t) {
        if (auto sink = rt->traceSink()) {
            sink->emit(trace::TraceSink::sweeperTid,
                       trace::EventKind::SweepTick, nextHook);
        }
        rt->onSweep(nextHook);
        nextHook += hookPeriod;
    }
}

void
ShardDomain::runJobs(const std::vector<sim::Job *> &jobs)
{
    // Machine::run keeps its own boundary cursor starting at one
    // hookPeriod; replaying boundaries this domain already fired
    // (via sweepTo) would double-bill the sweeper, so route the hook
    // through sweepTo's cursor instead of calling onSweep directly.
    // Machine::run emits the SweepTick trace event itself, so only
    // forward the runtime call here.
    mach->run(jobs, [this](Cycles now) {
        if (now >= nextHook) {
            rt->onSweep(now);
            nextHook = now + hookPeriod;
        }
    });
}

void
ShardDomain::finalize()
{
    rt->finalize();
}

void
ShardDomain::crash(Cycles at)
{
    rt->crash(at);
}

unsigned
ShardDomain::recover(sim::ThreadContext &tc, Cycles resumeAt)
{
    // Grid-aligned skip keeps mixed sweepTo/runJobs drivers in step;
    // never move the cursor backwards (a zero-length outage must not
    // re-fire boundaries that already fired).
    const Cycles next = (resumeAt / hookPeriod + 1) * hookPeriod;
    if (next > nextHook)
        nextHook = next;
    if (tc.now() < resumeAt)
        tc.syncTo(resumeAt, sim::Charge::Other);
    return rt->recover(tc);
}

} // namespace core
} // namespace terp
