#include "core/runtime.hh"

#include <algorithm>

#include "common/logging.hh"
#include "pm/persist.hh"
#include "pm/tx_manager.hh"

namespace terp {
namespace core {

namespace {

/** Index of the lowest set bit; @p v must be non-zero. */
inline unsigned
countTrailingZeros(std::uint64_t v)
{
#if defined(__GNUC__)
    return static_cast<unsigned>(__builtin_ctzll(v));
#else
    unsigned n = 0;
    while (!(v & 1)) {
        v >>= 1;
        ++n;
    }
    return n;
#endif
}

} // namespace

const char *
accessOutcomeName(AccessOutcome o)
{
    switch (o) {
      case AccessOutcome::Ok: return "ok";
      case AccessOutcome::NoMapping: return "segfault(no-mapping)";
      case AccessOutcome::NoProcessPerm: return "denied(process)";
      case AccessOutcome::NoThreadPerm: return "denied(thread)";
      default: return "?";
    }
}

Runtime::Runtime(sim::Machine &machine, pm::PmoManager &pmos,
                 const RuntimeConfig &config)
    : mach(machine), pm_(pmos), cfg(config)
{
    if (cfg.traceEnabled) {
        sink = std::make_shared<trace::TraceSink>(cfg.traceCapacity);
        mach.setTraceSink(sink.get());
        pm_.setTraceSink(sink.get());
    }
    ew.setSlo(cfg.ewSlo, cfg.tewSlo);
    // Idle-past-deadline spans are the sweeper's fault: blame keys on
    // the same target the sweep rules use. Always on (charge-free).
    ew.setBlameTarget(cfg.ewTarget);
    if (sink) {
        trace::TraceSink *bs = sink.get();
        ew.setSegmentHook([bs](pm::PmoId pmo, Cycles end,
                               semantics::BlameCause c) {
            bs->emit(trace::TraceSink::sweeperTid,
                     trace::EventKind::BlameSegment, end, pmo,
                     static_cast<std::uint64_t>(c));
        });
    }
    if (cfg.metricsEnabled && metrics::enabledByEnv()) {
        reg = std::make_shared<metrics::Registry>();
        reg->setLabel("scheme", schemeTag(cfg));
        ew.enableMetrics(reg.get());
        mSweepTicks = &reg->counter("sweeper.ticks");
        mSweepForceDetach = &reg->counter("sweeper.force_detach");
        mSweepRandomize = &reg->counter("sweeper.randomize");
        mSweepPmoScans = &reg->counter("host.sweep_pmo_scans");
        mSweepTickNs = &reg->histogram("host.sweep_tick_ns");
        if (cfg.windowCombining)
            mCbOccupancy = &reg->gauge("cb.occupancy");
        if (cfg.metricsSamplePeriod > 0) {
            sampler = std::make_unique<metrics::Sampler>(
                *reg, cfg.metricsSamplePeriod);
        }
    }
}

Runtime::~Runtime()
{
    // The machine and PMO manager outlive this runtime; don't leave
    // them holding a pointer into a sink we may be the last owner of.
    if (sink) {
        mach.setTraceSink(nullptr);
        pm_.setTraceSink(nullptr);
    }
}

void
Runtime::attachPersistence(pm::PersistDomain *domain)
{
    dom = domain;
    txm = domain ? std::make_unique<pm::TxManager>(*domain)
                 : nullptr;
    if (txm) {
        // Lock-contention spans re-attribute the holder's window:
        // the cycles are the same, the cause is the waiter.
        txm->setContentionHook(
            [this](pm::PmoId pmo, Cycles t, bool on) {
                if (on) {
                    ew.setHoldCause(
                        pmo, semantics::BlameCause::TxnLockWait, t);
                } else {
                    ew.clearHoldCause(pmo, t);
                }
            });
    }
}

Runtime::MapState &
Runtime::mapState(pm::PmoId pmo)
{
    if (pmo >= maps.size()) {
        maps.resize(pmo + 1);
        mappedBits.resize((maps.size() + 63) / 64, 0);
    }
    return maps[pmo];
}

unsigned &
Runtime::depthSlot(unsigned tid, pm::PmoId pmo)
{
    if (tid >= regionDepth.size())
        regionDepth.resize(tid + 1);
    auto &row = regionDepth[tid];
    if (pmo >= row.size())
        row.resize(pmo + 1, 0);
    return row[pmo];
}

sim::ThreadContext *
Runtime::minClockThread()
{
    sim::ThreadContext *best = nullptr;
    for (unsigned i = 0; i < mach.threadCount(); ++i) {
        sim::ThreadContext &t = mach.thread(i);
        if (t.done)
            continue;
        if (!best || t.now() < best->now())
            best = &t;
    }
    // No live thread (post-run drain): nobody to charge; callers use
    // the chargeless paths instead of billing a finished thread.
    return best;
}

// ------------------------------------------------------------- helpers

void
Runtime::doRealAttach(sim::ThreadContext &tc, pm::PmoId pmo,
                      pm::Mode mode)
{
    tc.charge(sim::Charge::Attach, latency::attachSyscall);
    ++ctr[ctrAttachSyscalls];
    if (cfg.randomizeOnAttach) {
        // MERR-style randomized placement at every real attach.
        tc.charge(sim::Charge::Rand, latency::randomize);
        ++ctr[ctrRandomizations];
    }

    pm::Pmo &p = pm_.pmo(pmo);
    pm_.mapRandomized(p);
    matrix.add(pmo, p.vaddrBase(), p.size(), mode);
    ew.processOpen(pmo, tc.now());
    emit(tc, trace::EventKind::RealAttach, pmo, p.vaddrBase());

    auto &m = mapState(pmo);
    m.mapped = true;
    m.lastRealAttach = tc.now();
    m.grantedMode = mode;
    ++m.gen;
    setMappedBit(pmo, true);
}

void
Runtime::doRealDetach(sim::ThreadContext &tc, pm::PmoId pmo)
{
    doRealDetachAt(&tc, pmo, tc.now());
}

void
Runtime::doRealDetachAt(sim::ThreadContext *tc, pm::PmoId pmo,
                        Cycles at)
{
    if (tc) {
        tc->charge(sim::Charge::Detach,
                   latency::detachSyscall + latency::tlbInvalidate);
        at = tc->now();
    }
    ++ctr[ctrDetachSyscalls];

    pm::Pmo &p = pm_.pmo(pmo);
    pm::MapChange ch = pm_.unmap(p);
    mach.shootdownRange(ch.oldBase, ch.oldBase + ch.size);
    matrix.remove(pmo);
    ew.processClose(pmo, at);
    if (tc)
        emit(*tc, trace::EventKind::RealDetach, pmo, ch.oldBase);
    else
        emitSweeper(trace::EventKind::RealDetach, at, pmo, ch.oldBase);
    auto &m = mapState(pmo);
    m.mapped = false;
    ++m.gen;
    setMappedBit(pmo, false);
}

void
Runtime::doRandomize(pm::PmoId pmo, Cycles at)
{
    pm::Pmo &p = pm_.pmo(pmo);
    pm::MapChange ch = pm_.rerandomize(p);
    mach.shootdownRange(ch.oldBase, ch.oldBase + ch.size);
    matrix.rebase(pmo, ch.newBase);
    ++ctr[ctrRandomizations];
    emitSweeper(trace::EventKind::Randomize, at, pmo, ch.newBase);

    // Randomization suspends every thread for the remap plus the TLB
    // shootdown (Section V-B); each thread loses that time.
    for (unsigned i = 0; i < mach.threadCount(); ++i) {
        sim::ThreadContext &t = mach.thread(i);
        if (!t.done) {
            t.charge(sim::Charge::Rand,
                     latency::randomize + latency::tlbInvalidate);
        }
    }
}

void
Runtime::grantThread(sim::ThreadContext &tc, pm::PmoId pmo,
                     pm::Mode mode)
{
    // A lowered attach may request broader rights than the mode the
    // PMO was originally mapped with; the process-level mapping must
    // cover the union of granted modes (Fig 4: T2's attach(RW) after
    // T1's attach(R) must make T2's stores legal). Found by terp-fuzz.
    matrix.widen(pmo, mode);
    domains.grant(tc.tid(), pmo, mode);
    ew.threadOpen(tc.tid(), pmo, tc.now());
    emit(tc, trace::EventKind::ThreadGrant, pmo,
         static_cast<std::uint64_t>(mode));
}

void
Runtime::revokeThread(sim::ThreadContext &tc, pm::PmoId pmo)
{
    domains.revoke(tc.tid(), pmo);
    ew.threadClose(tc.tid(), pmo, tc.now());
    emit(tc, trace::EventKind::ThreadRevoke, pmo);
}

// ------------------------------------------------- manual (MM) markers

void
Runtime::manualBegin(sim::ThreadContext &tc, pm::PmoId pmo,
                     pm::Mode mode)
{
    if (cfg.insertion != Insertion::Manual)
        return;
    auto &m = mapState(pmo);
    TERP_ASSERT(!m.mapped, "MM: nested manual attach on PMO ", pmo);
    emit(tc, trace::EventKind::RegionBegin, pmo,
         static_cast<std::uint64_t>(mode));
    doRealAttach(tc, pmo, mode);
    mapState(pmo).holders = 1;
    // Manual spans hold the window open without a thread-permission
    // grant; tell blame so the span reads as held, not idle.
    ew.setExternalHold(pmo, true, tc.now());
}

void
Runtime::manualEnd(sim::ThreadContext &tc, pm::PmoId pmo)
{
    if (cfg.insertion != Insertion::Manual)
        return;
    auto &m = mapState(pmo);
    TERP_ASSERT(m.mapped, "MM: manual detach of unattached PMO ", pmo);
    m.holders = 0;
    // Detach first: the span up to the close (detach syscall
    // included) is still the manual span's hold.
    doRealDetach(tc, pmo);
    ew.setExternalHold(pmo, false, tc.now());
    emit(tc, trace::EventKind::RegionEnd, pmo);
}

// ------------------------------------------------ auto-inserted regions

GuardResult
Runtime::regionBegin(sim::ThreadContext &tc, pm::PmoId pmo,
                     pm::Mode mode)
{
    if (cfg.insertion != Insertion::Auto)
        return GuardResult::Ok;
    if (cfg.basicBlocking)
        return basicRegionBegin(tc, pmo, mode);
    if (cfg.condInstructions) {
        ttRegionBegin(tc, pmo, mode);
        return GuardResult::Ok;
    }
    tmRegionBegin(tc, pmo, mode);
    return GuardResult::Ok;
}

void
Runtime::regionEnd(sim::ThreadContext &tc, pm::PmoId pmo)
{
    if (cfg.insertion != Insertion::Auto)
        return;
    if (cfg.basicBlocking) {
        basicRegionEnd(tc, pmo);
        return;
    }
    if (cfg.condInstructions) {
        ttRegionEnd(tc, pmo);
        return;
    }
    tmRegionEnd(tc, pmo);
}

// TT: conditional instructions, optionally with window combining.

void
Runtime::ttRegionBegin(sim::ThreadContext &tc, pm::PmoId pmo,
                       pm::Mode mode)
{
    emit(tc, trace::EventKind::RegionBegin, pmo,
         static_cast<std::uint64_t>(mode));
    tc.charge(sim::Charge::Cond, latency::silentCond);
    ++ctr[ctrCondOps];

    // Function composability: a dynamically nested pair (callee
    // inside the caller's open pair) lowers to a no-op beyond the
    // conditional instruction itself.
    unsigned &depth = depthSlot(tc.tid(), pmo);
    if (++depth > 1) {
        ++ctr[ctrNestedRegions];
        emit(tc, trace::EventKind::SilentAttach, pmo,
             trace::silent::nested);
        return;
    }

    if (cfg.windowCombining) {
        arch::CondAttachCase c = cb.condAttach(pmo, tc.now());
        if (mCbOccupancy)
            mCbOccupancy->set(cb.liveEntries());
        if (c == arch::CondAttachCase::FirstAttach) {
            doRealAttach(tc, pmo, mode);
        } else {
            emit(tc, trace::EventKind::SilentAttach, pmo,
                 trace::silent::combined);
        }
        grantThread(tc, pmo, mode);
        return;
    }

    // "+Cond" ablation: conditional instructions without the buffer.
    auto &m = mapState(pmo);
    ++ctr[m.mapped ? ctrCondSilentNocb : ctrCondFullNocb];
    if (!m.mapped) {
        doRealAttach(tc, pmo, mode);
    } else {
        emit(tc, trace::EventKind::SilentAttach, pmo,
             trace::silent::mapped);
    }
    ++m.holders;
    grantThread(tc, pmo, mode);
}

void
Runtime::ttRegionEnd(sim::ThreadContext &tc, pm::PmoId pmo)
{
    tc.charge(sim::Charge::Cond, latency::silentCond);
    ++ctr[ctrCondOps];

    unsigned &depth = depthSlot(tc.tid(), pmo);
    TERP_ASSERT(depth > 0, "regionEnd without begin, tid ", tc.tid(),
                " pmo ", pmo);
    if (--depth > 0) {
        // inner pair of a nest: permission stays open
        emit(tc, trace::EventKind::SilentDetach, pmo,
             trace::silent::nested);
        emit(tc, trace::EventKind::RegionEnd, pmo);
        return;
    }

    if (cfg.windowCombining) {
        revokeThread(tc, pmo);
        arch::CondDetachCase c =
            cb.condDetach(pmo, tc.now(), cfg.ewTarget);
        if (c == arch::CondDetachCase::FullDetach) {
            doRealDetach(tc, pmo);
        } else {
            emit(tc, trace::EventKind::SilentDetach, pmo,
                 c == arch::CondDetachCase::DelayedDetach
                     ? trace::silent::delayed
                     : trace::silent::partial);
        }
        emit(tc, trace::EventKind::RegionEnd, pmo);
        return;
    }

    auto &m = mapState(pmo);
    TERP_ASSERT(m.holders > 0, "regionEnd without begin, PMO ", pmo);
    revokeThread(tc, pmo);
    --m.holders;
    if (m.holders == 0) {
        doRealDetach(tc, pmo); // detaches too soon: no combining
    } else {
        emit(tc, trace::EventKind::SilentDetach, pmo,
             trace::silent::partial);
    }
    emit(tc, trace::EventKind::RegionEnd, pmo);
}

// TM: EW-conscious semantics implemented purely in software on the
// MERR architecture. Boundary operations perform the full mapping
// system calls; lowered operations still trap to the kernel for the
// thread-permission update (no 27-cycle conditional instructions).

void
Runtime::tmRegionBegin(sim::ThreadContext &tc, pm::PmoId pmo,
                       pm::Mode mode)
{
    emit(tc, trace::EventKind::RegionBegin, pmo,
         static_cast<std::uint64_t>(mode));
    unsigned &depth = depthSlot(tc.tid(), pmo);
    if (++depth > 1) {
        // Nested pair: the kernel still gets the (cheap) call.
        tc.charge(sim::Charge::Attach, latency::permSyscall);
        ++ctr[ctrPermSyscalls];
        ++ctr[ctrNestedRegions];
        emit(tc, trace::EventKind::SilentAttach, pmo,
             trace::silent::nested);
        return;
    }

    auto &m = mapState(pmo);
    if (!m.mapped) {
        doRealAttach(tc, pmo, mode);
    } else {
        tc.charge(sim::Charge::Attach, latency::permSyscall);
        ++ctr[ctrPermSyscalls];
        emit(tc, trace::EventKind::SilentAttach, pmo,
             trace::silent::mapped);
    }
    ++m.holders;
    grantThread(tc, pmo, mode);
}

void
Runtime::tmRegionEnd(sim::ThreadContext &tc, pm::PmoId pmo)
{
    unsigned &depth = depthSlot(tc.tid(), pmo);
    TERP_ASSERT(depth > 0, "regionEnd without begin, tid ", tc.tid(),
                " pmo ", pmo);
    if (--depth > 0) {
        tc.charge(sim::Charge::Detach, latency::permSyscall);
        ++ctr[ctrPermSyscalls];
        emit(tc, trace::EventKind::SilentDetach, pmo,
             trace::silent::nested);
        emit(tc, trace::EventKind::RegionEnd, pmo);
        return;
    }

    auto &m = mapState(pmo);
    TERP_ASSERT(m.holders > 0, "regionEnd without begin, PMO ", pmo);
    revokeThread(tc, pmo);
    --m.holders;
    // EW-conscious condition: real detach only when the exposure
    // span exceeded the target and no thread holds permission.
    if (m.holders == 0 &&
        tc.now() >= m.lastRealAttach + cfg.ewTarget) {
        doRealDetach(tc, pmo);
    } else {
        tc.charge(sim::Charge::Detach, latency::permSyscall);
        ++ctr[ctrPermSyscalls];
        emit(tc, trace::EventKind::SilentDetach, pmo,
             m.holders > 0 ? trace::silent::partial
                           : trace::silent::delayed);
    }
    emit(tc, trace::EventKind::RegionEnd, pmo);
}

// Basic-semantics ablation: process-wide exclusive attach.

GuardResult
Runtime::basicRegionBegin(sim::ThreadContext &tc, pm::PmoId pmo,
                          pm::Mode mode)
{
    auto &m = mapState(pmo);
    if (m.mapped && m.ownerTid != tc.tid()) {
        // Under the basic semantics a second attach is invalid, so a
        // well-formed thread must wait for the holder's detach.
        tc.blockOn(pmo);
        ++ctr[ctrBasicBlocks];
        return GuardResult::Blocked;
    }
    TERP_ASSERT(!m.mapped, "basic semantics: nested attach");
    // Emitted only on the successful entry so a blocked retry does
    // not produce an unbalanced begin.
    emit(tc, trace::EventKind::RegionBegin, pmo,
         static_cast<std::uint64_t>(mode));
    doRealAttach(tc, pmo, mode);
    m.ownerTid = tc.tid();
    m.holders = 1;
    ew.setExternalHold(pmo, true, tc.now());
    return GuardResult::Ok;
}

void
Runtime::basicRegionEnd(sim::ThreadContext &tc, pm::PmoId pmo)
{
    auto &m = mapState(pmo);
    TERP_ASSERT(m.mapped && m.ownerTid == tc.tid(),
                "basic semantics: detach by non-owner");
    m.holders = 0;
    doRealDetach(tc, pmo);
    ew.setExternalHold(pmo, false, tc.now());
    emit(tc, trace::EventKind::RegionEnd, pmo);
    mach.wake(pmo, tc.now());
}

// ----------------------------------------------------------- accesses

AccessOutcome
Runtime::tryAccess(sim::ThreadContext &tc, const pm::Oid &oid,
                   bool write)
{
    pm::Pmo &p = pm_.pmo(oid.pool());

    if (cfg.scheme == Scheme::Unprotected) {
        if (!p.attached())
            pm_.mapRandomized(p); // mapped once, for the whole run
        mach.access(tc, pm_.accessFor(oid, write));
        return AccessOutcome::Ok;
    }

    // ld/st checks the permission matrix alongside the TLB.
    tc.charge(sim::Charge::Other, latency::permMatrix);

    AccessOutcome out = AccessOutcome::Ok;
    if (!p.attached()) {
        out = AccessOutcome::NoMapping;
    } else {
        arch::MatrixHit hit =
            matrix.check(p.vaddrOf(oid.offset()), write);
        if (!hit.present)
            out = AccessOutcome::NoMapping;
        else if (!hit.permitted)
            out = AccessOutcome::NoProcessPerm;
        else if (cfg.threadPerms &&
                 !domains.allows(tc.tid(), oid.pool(), write)) {
            out = AccessOutcome::NoThreadPerm;
        }
    }
    if (out != AccessOutcome::Ok) {
        emit(tc, trace::EventKind::AccessFault, oid.pool(),
             static_cast<std::uint64_t>(out));
        return out;
    }

    mach.access(tc, pm_.accessFor(oid, write));
    return AccessOutcome::Ok;
}

AccessOutcome
Runtime::tryAccessVaddr(sim::ThreadContext &tc, std::uint64_t vaddr,
                        bool write)
{
    if (cfg.scheme != Scheme::Unprotected)
        tc.charge(sim::Charge::Other, latency::permMatrix);

    const pm::Pmo *p = pm_.findByVaddr(vaddr);
    if (!p) {
        // Segmentation fault (e.g. a stale pre-randomization address).
        emit(tc, trace::EventKind::AccessFault, pm::invalidPmoId,
             static_cast<std::uint64_t>(AccessOutcome::NoMapping));
        return AccessOutcome::NoMapping;
    }

    if (cfg.scheme != Scheme::Unprotected) {
        AccessOutcome out = AccessOutcome::Ok;
        arch::MatrixHit hit = matrix.check(vaddr, write);
        if (!hit.present)
            out = AccessOutcome::NoMapping;
        else if (!hit.permitted)
            out = AccessOutcome::NoProcessPerm;
        else if (cfg.threadPerms &&
                 !domains.allows(tc.tid(), p->id(), write)) {
            out = AccessOutcome::NoThreadPerm;
        }
        if (out != AccessOutcome::Ok) {
            emit(tc, trace::EventKind::AccessFault, p->id(),
                 static_cast<std::uint64_t>(out));
            return out;
        }
    }

    std::uint64_t off = vaddr - p->vaddrBase();
    mach.access(tc, sim::MemAccess{vaddr, p->paddrOf(off), write,
                                   sim::MemKind::Nvm});
    return AccessOutcome::Ok;
}

void
Runtime::access(sim::ThreadContext &tc, const pm::Oid &oid, bool write)
{
    AccessOutcome o = tryAccess(tc, oid, write);
    TERP_ASSERT(o == AccessOutcome::Ok, "PMO access fault: ",
                accessOutcomeName(o), " pool ", oid.pool(),
                " offset ", oid.offset(), " tid ", tc.tid());
}

void
Runtime::accessRange(sim::ThreadContext &tc, const pm::Oid &oid,
                     std::uint64_t bytes, bool write)
{
    if (bytes == 0)
        return;
    // One access per cache line the range overlaps. The start may sit
    // mid-line, so count lines from floor(start/line) to
    // ceil(end/line) rather than ceil(bytes/line): an unaligned range
    // crossing a line boundary touches one more line than its byte
    // count alone suggests.
    std::uint64_t start = oid.offset();
    std::uint64_t first = start / lineSize;
    std::uint64_t last = (start + bytes - 1) / lineSize;

    // The first line takes the fully-checked path (and panics on a
    // fault, as every line did before). The permission verdict cannot
    // change between lines of one call — all lines live in the same
    // PMO, so they share one matrix entry and one thread-domain slot,
    // and no sweep or region op can interleave inside a single
    // runtime call — so the remaining lines keep only the per-line
    // charges (matrix probe + timed memory access) and skip the
    // re-validation.
    access(tc, pm::Oid(oid.pool(), first * lineSize), write);
    if (first == last)
        return;

    const bool checked = cfg.scheme != Scheme::Unprotected;
    for (std::uint64_t l = first + 1; l <= last; ++l) {
        if (checked)
            tc.charge(sim::Charge::Other, latency::permMatrix);
        mach.access(tc,
                    pm_.accessFor(pm::Oid(oid.pool(), l * lineSize),
                                  write));
    }
}

// -------------------------------------------------------------- sweep

void
Runtime::onSweep(Cycles now)
{
    if (cfg.scheme == Scheme::Unprotected)
        return;

    if (sampler)
        sampler->tick(now);
    // Host-side tick latency, sampled every 64th tick: the clock
    // read costs more than an uneventful sweep, so timing every tick
    // would mostly profile the profiler.
    metrics::ScopedTimer tickTimer(
        mSweepTickNs && (sweepTickSeq++ & 63) == 0 ? mSweepTickNs
                                                   : nullptr);
    if (mSweepTicks)
        mSweepTicks->inc();

    if (cfg.windowCombining) {
        for (const arch::SweepAction &a : cb.sweep(now, cfg.ewTarget)) {
            if (a.detach) {
                if (mSweepForceDetach)
                    mSweepForceDetach->inc();
                // The hardware-triggered detach interrupts the
                // earliest-running thread.
                emitSweeper(trace::EventKind::DelayedDetach, now,
                            a.pmo);
                sim::ThreadContext *tc = minClockThread();
                if (tc) {
                    tc->syncTo(now, sim::Charge::Other);
                    doRealDetach(*tc, a.pmo);
                } else {
                    // Post-run drain: every thread already finished,
                    // so the kernel work is nobody's overhead.
                    doRealDetachAt(nullptr, a.pmo, now);
                }
            } else {
                if (mSweepRandomize)
                    mSweepRandomize->inc();
                // Threads still hold the PMO: randomize in place so
                // the location never outlives the max EW (partial
                // combining, Fig 6c).
                // Close the tracker first so the blame segments it
                // emits precede the Randomize event in the trace.
                ew.processClose(a.pmo, now);
                doRandomize(a.pmo, now);
                ew.processOpen(a.pmo, now);
                auto &m = mapState(a.pmo);
                m.lastRealAttach = now;
                ++m.gen;
            }
        }
        if (mCbOccupancy)
            mCbOccupancy->set(cb.liveEntries());
        return;
    }

    // MERR-architecture schemes: software timer applying the
    // EW-conscious closing rule — when the window target elapsed,
    // fully detach an idle PMO, or re-randomize one still in use so
    // a location never outlives the window. The walk visits only
    // mapped PMOs (dense bit index, ascending — same visit order as
    // the full vector walk it replaced) and re-derives each PMO's EW
    // deadline only when its generation moved since the last scan,
    // so a tick over an idle fleet is O(mapped) cached compares.
    for (std::size_t w = 0; w < mappedBits.size(); ++w) {
        std::uint64_t bits = mappedBits[w];
        while (bits) {
            const auto pmo = static_cast<pm::PmoId>(
                (w << 6) + countTrailingZeros(bits));
            bits &= bits - 1;
            MapState &m = maps[pmo];
            if (mSweepPmoScans)
                mSweepPmoScans->inc();
            if (m.scanGen != m.gen) {
                m.sweepDeadline = m.lastRealAttach + cfg.ewTarget;
                m.scanGen = m.gen;
            }
            if (now < m.sweepDeadline)
                continue;
            if (m.holders == 0) {
                if (mSweepForceDetach)
                    mSweepForceDetach->inc();
                // Idle and expired: full detach, regardless of who
                // inserted the protection points. The old
                // Insertion::Auto qualifier here left a
                // manually-bookended PMO that went idle (e.g. one
                // re-attached by crash recovery) mapped — and
                // re-randomized on every sweep — forever.
                emitSweeper(trace::EventKind::DelayedDetach, now, pmo);
                sim::ThreadContext *tc = minClockThread();
                if (tc) {
                    tc->syncTo(now, sim::Charge::Other);
                    doRealDetach(*tc, pmo);
                } else {
                    doRealDetachAt(nullptr, pmo, now);
                }
            } else {
                if (mSweepRandomize)
                    mSweepRandomize->inc();
                ew.processClose(pmo, now);
                doRandomize(pmo, now);
                ew.processOpen(pmo, now);
                m.lastRealAttach = now;
                ++m.gen;
            }
        }
    }
}

void
Runtime::finalize()
{
    if (finalized)
        return;
    finalized = true;
    ew.finalize(mach.maxClock());
    publishMetrics();
}

void
Runtime::publishMetrics()
{
    if (!reg)
        return;

    // Event counters, under the same names counters() reports.
    static const char *const ctrNames[numCounters] = {
        "runtime.attach_syscalls", "runtime.detach_syscalls",
        "runtime.randomizations",  "runtime.cond_ops",
        "runtime.nested_regions",  "runtime.cond_silent_nocb",
        "runtime.cond_full_nocb",  "runtime.perm_syscalls",
        "runtime.basic_blocks",
    };
    for (unsigned i = 0; i < numCounters; ++i)
        if (ctr[i])
            reg->counter(ctrNames[i]).inc(ctr[i]);

    // Cycle attribution, summed over threads like report().
    OverheadReport rep = report();
    reg->counter("runtime.cycles_work").inc(rep.work);
    reg->counter("runtime.cycles_attach").inc(rep.attach);
    reg->counter("runtime.cycles_detach").inc(rep.detach);
    reg->counter("runtime.cycles_rand").inc(rep.rand);
    reg->counter("runtime.cycles_cond").inc(rep.cond);
    reg->counter("runtime.cycles_other").inc(rep.other);

    // Silent-vs-real operation split (Table 3). The integer operands
    // are the exact ones report() divides, so a consumer recomputing
    // silent/(silent+full) reproduces silentFraction bit-for-bit.
    std::uint64_t silent = 0, full = 0;
    if (cfg.windowCombining) {
        const arch::CircularBuffer::Stats &cs = cb.stats();
        reg->counter("cb.condat_case1").inc(cs.case1);
        reg->counter("cb.condat_case2").inc(cs.case2);
        reg->counter("cb.condat_case3").inc(cs.case3);
        reg->counter("cb.conddt_case4").inc(cs.case4);
        reg->counter("cb.conddt_case5").inc(cs.case5);
        reg->counter("cb.conddt_case6").inc(cs.case6);
        reg->counter("cb.sweep_detach").inc(cs.sweepDetach);
        reg->counter("cb.sweep_randomize").inc(cs.sweepRandomize);
        silent = cs.case2 + cs.case3 + cs.case4 + cs.case6;
        full = cs.case1 + cs.case5;
    } else if (cfg.condInstructions) {
        silent = ctr[ctrCondSilentNocb];
        full = ctr[ctrCondFullNocb];
    } else if (cfg.scheme == Scheme::TM &&
               cfg.insertion == Insertion::Auto) {
        silent = ctr[ctrPermSyscalls];
        full = ctr[ctrAttachSyscalls] + ctr[ctrDetachSyscalls];
    }
    reg->counter("runtime.silent_ops").inc(silent);
    reg->counter("runtime.full_ops").inc(full);
    reg->gauge("runtime.silent_fraction").set(rep.silentFraction);

    // Persistence substrate.
    if (dom) {
        const pm::PersistController &pc = dom->controller();
        reg->counter("pm.clwb_issued").inc(pc.clwbCount());
        reg->counter("pm.fences").inc(pc.fenceCount());
        std::uint64_t logBytes = 0, logEntries = 0;
        std::uint64_t rollbacks = 0, rolledBack = 0;
        for (const auto &[pmo, log] : dom->logs()) {
            (void)pmo;
            logBytes += log->bytesLogged();
            logEntries += log->entriesLogged();
            rollbacks += log->rollbacks();
            rolledBack += log->entriesRolledBack();
        }
        reg->counter("pm.undo_log_bytes").inc(logBytes);
        reg->counter("pm.undo_log_entries").inc(logEntries);
        reg->counter("pm.rollbacks").inc(rollbacks);
        reg->counter("pm.entries_rolled_back").inc(rolledBack);
        std::uint64_t redoBytes = 0, redoEntries = 0;
        std::uint64_t rollFwd = 0, applied = 0;
        for (const auto &[pmo, log] : dom->redoLogs()) {
            (void)pmo;
            redoBytes += log->bytesLogged();
            redoEntries += log->entriesLogged();
            rollFwd += log->rollForwards();
            applied += log->entriesApplied();
        }
        reg->counter("pm.redo_log_bytes").inc(redoBytes);
        reg->counter("pm.redo_log_entries").inc(redoEntries);
        reg->counter("pm.roll_forwards").inc(rollFwd);
        reg->counter("pm.entries_rolled_forward").inc(applied);
    }
    if (txm) {
        reg->counter("pm.txn_begins").inc(txm->outermostBegins());
        reg->counter("pm.txn_nested_begins").inc(txm->nestedBegins());
        reg->counter("pm.txn_busy").inc(txm->busyRejections());
        reg->counter("pm.txn_commits").inc(txm->durableCommits());
        reg->counter("pm.txn_aborts").inc(txm->aborts());
    }

    // Simulator shape.
    reg->counter("sim.total_cycles").inc(mach.maxClock());
    reg->gauge("sim.threads").set(mach.threadCount());
}

// ----------------------------------------------------- crash/recovery

void
Runtime::crash(Cycles at)
{
    if (sink)
        sink->emit(trace::TraceSink::kernelTid,
                   trace::EventKind::Crash, at);

    // Thread permissions (the PKRU analogue) are volatile. The
    // free-running sweeper can have reopened a window at a wall-clock
    // instant beyond @p at (e.g. a randomize completing right at the
    // failure); such a window closes with zero length rather than
    // rewinding the tracker's clock.
    for (unsigned tid = 0; tid < mach.threadCount(); ++tid) {
        // Scan the thread's dense rights row directly; same (tid,
        // pmo) visit order as the bounds-checked holds() walk.
        const auto &row = domains.row(tid);
        const auto nPmo = static_cast<pm::PmoId>(
            std::min<std::size_t>(row.size(), maps.size()));
        for (pm::PmoId pmo = 0; pmo < nPmo; ++pmo) {
            if (row[pmo] == pm::Mode::None)
                continue;
            domains.revoke(tid, pmo);
            Cycles tClose =
                std::max(at, ew.threadOpenSince(tid, pmo));
            ew.threadClose(tid, pmo, tClose);
            if (sink) {
                sink->emit(tid, trace::EventKind::ThreadRevoke,
                           tClose, pmo);
            }
        }
    }

    // Address-space mappings, the permission matrix, and the
    // circular buffer are volatile too. Only mapped PMOs (dense bit
    // index, ascending order as before) have windows to close; the
    // wholesale reset below restores every entry — mapped or not —
    // to the default state the old full-vector walk left behind.
    for (std::size_t w = 0; w < mappedBits.size(); ++w) {
        std::uint64_t bits = mappedBits[w];
        while (bits) {
            const auto pmo = static_cast<pm::PmoId>(
                (w << 6) + countTrailingZeros(bits));
            bits &= bits - 1;
            std::uint64_t base = pm_.pmo(pmo).vaddrBase();
            matrix.remove(pmo);
            if (ew.processWindowOpen(pmo)) {
                Cycles tClose =
                    std::max(at, ew.processOpenSince(pmo));
                ew.processClose(pmo, tClose);
                if (sink) {
                    sink->emit(trace::TraceSink::kernelTid,
                               trace::EventKind::RealDetach, tClose,
                               pmo, base);
                }
            } else if (sink) {
                sink->emit(trace::TraceSink::kernelTid,
                           trace::EventKind::RealDetach, at, pmo,
                           base);
            }
        }
    }
    maps.assign(maps.size(), MapState{});
    std::fill(mappedBits.begin(), mappedBits.end(), 0);
    // Cause overrides describe volatile state (manual spans, txn
    // locks, queued requests) that the failure just vaporized.
    ew.resetTransientCauses();
    for (pm::PmoId pmo : cb.residentPmos())
        cb.evict(pmo);
    regionDepth.clear();
    // Unmap everything, including mappings the protected paths never
    // tracked (the Unprotected scheme's lazy map).
    pm_.resetMappings();

    // Blocked waiters: the process they were waiting in is gone.
    for (unsigned tid = 0; tid < mach.threadCount(); ++tid) {
        sim::ThreadContext &t = mach.thread(tid);
        if (t.blocked())
            mach.wake(t.blockToken(), at);
    }

    if (txm)
        txm->onCrash();
    if (dom)
        dom->crash();
}

unsigned
Runtime::recover(sim::ThreadContext &tc)
{
    TERP_ASSERT(dom,
                "recover() without an attached persistence domain");
    unsigned recovered = 0;
    // Windows opened by the replay blame their idle base on the
    // recovery pass, not the application.
    ew.setRecoveryActive(true);
    // One PMO's replay under the scheme's protection discipline:
    // attach (full Table II cost), run the log's recovery, release
    // through the CONDDT path so the sweeper closes the recovery
    // window like any other.
    auto replay = [&](pm::PmoId pmo, auto &log) {
        if (cfg.scheme == Scheme::Unprotected) {
            std::uint64_t n = log.recover(tc);
            emit(tc, trace::EventKind::Recover, pmo, n);
            return;
        }
        // A PMO can have both its undo and its redo log pending
        // after one failure (independent transactions); the first
        // replay left it mapped — its recovery window closes through
        // the normal delayed path — so the second must reuse that
        // window rather than re-attach over it.
        const bool alreadyMapped = mapState(pmo).mapped;
        if (cfg.windowCombining) {
            // Recovery replays every pending log in one burst with
            // no sweep ticks in between, so each replayed PMO is
            // still delayed-resident when the next one attaches. A
            // failure that strands more transactions than the buffer
            // has entries would overflow it: resolve a delayed-
            // detach victim first, exactly as the sweep would.
            if (!cb.resident(pmo) &&
                cb.liveEntries() == arch::CircularBuffer::capacity) {
                for (pm::PmoId v : cb.residentPmos()) {
                    if (cb.counter(v) == 0 && cb.delayed(v)) {
                        cb.evict(v);
                        doRealDetach(tc, v);
                        break;
                    }
                }
            }
            cb.condAttach(pmo, tc.now());
        }
        if (!alreadyMapped)
            doRealAttach(tc, pmo, pm::Mode::ReadWrite);
        std::uint64_t n = log.recover(tc);
        emit(tc, trace::EventKind::Recover, pmo, n);
        if (cfg.windowCombining) {
            // Release through the CONDDT path: the rollback was
            // almost certainly shorter than the window target, so
            // this sets the delayed-detach bit and the sweeper later
            // performs the full detach (window combining applies to
            // the recovery process like anyone else).
            if (cb.condDetach(pmo, tc.now(), cfg.ewTarget) ==
                arch::CondDetachCase::FullDetach) {
                doRealDetach(tc, pmo);
            }
        }
    };
    for (const auto &[pmo, log] : dom->logs()) {
        if (!log->recoveryPending())
            continue;
        replay(pmo, *log);
        ++recovered;
    }
    // Redo logs roll forward: a durable commit record means the
    // transaction committed and only the in-place apply may be torn.
    for (const auto &[pmo, log] : dom->redoLogs()) {
        if (!log->recoveryPending())
            continue;
        replay(pmo, *log);
        ++recovered;
    }
    ew.setRecoveryActive(false);
    return recovered;
}

// ------------------------------------------------------------ reports

const CounterSet &
Runtime::counters() const
{
    static const char *const names[numCounters] = {
        "attach_syscalls", "detach_syscalls", "randomizations",
        "cond_ops",        "nested_regions",  "cond_silent_nocb",
        "cond_full_nocb",  "perm_syscalls",   "basic_blocks",
    };
    counts.reset();
    for (unsigned i = 0; i < numCounters; ++i)
        if (ctr[i])
            counts.inc(names[i], ctr[i]);
    return counts;
}

OverheadReport
Runtime::report() const
{
    OverheadReport r;
    for (unsigned i = 0; i < mach.threadCount(); ++i) {
        const sim::ThreadContext &t = mach.thread(i);
        r.work += t.charged(sim::Charge::Work);
        r.attach += t.charged(sim::Charge::Attach);
        r.detach += t.charged(sim::Charge::Detach);
        r.rand += t.charged(sim::Charge::Rand);
        r.cond += t.charged(sim::Charge::Cond);
        r.other += t.charged(sim::Charge::Other);
    }
    r.total = r.work + r.attach + r.detach + r.rand + r.cond + r.other;
    r.attachSyscalls = ctr[ctrAttachSyscalls];
    r.detachSyscalls = ctr[ctrDetachSyscalls];
    r.randomizations = ctr[ctrRandomizations];
    r.condOps = ctr[ctrCondOps];
    if (cfg.windowCombining) {
        r.silentFraction = cb.stats().silentFraction();
    } else if (cfg.condInstructions) {
        // Without the CB, "silent" = conditional ops that avoided a
        // mapping-changing system call.
        std::uint64_t silent = ctr[ctrCondSilentNocb];
        std::uint64_t full = ctr[ctrCondFullNocb];
        if (silent + full > 0) {
            r.silentFraction = static_cast<double>(silent) /
                               static_cast<double>(silent + full);
        }
    } else if (cfg.scheme == Scheme::TM &&
               cfg.insertion == Insertion::Auto) {
        // TM elides mapping syscalls too (the EW-conscious rule in
        // software): a lowered op that only touched the thread
        // permission is a silent call for Table 3's purposes.
        std::uint64_t silent = ctr[ctrPermSyscalls];
        std::uint64_t full = ctr[ctrAttachSyscalls] +
                             ctr[ctrDetachSyscalls];
        if (silent + full > 0) {
            r.silentFraction = static_cast<double>(silent) /
                               static_cast<double>(silent + full);
        }
    }
    return r;
}

bool
Runtime::mapped(pm::PmoId pmo) const
{
    return pm_.pmo(pmo).attached();
}

bool
Runtime::threadHolds(unsigned tid, pm::PmoId pmo) const
{
    return domains.holds(tid, pmo);
}

} // namespace core
} // namespace terp
