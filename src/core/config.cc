#include "core/config.hh"

#include <sstream>

namespace terp {
namespace core {

const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::Unprotected: return "Unprotected";
      case Scheme::MM: return "MM";
      case Scheme::TM: return "TM";
      case Scheme::TT: return "TT";
      default: return "?";
    }
}

const char *
schemeTag(const RuntimeConfig &cfg)
{
    switch (cfg.scheme) {
      case Scheme::Unprotected:
        return "unprotected";
      case Scheme::MM:
        return "mm";
      case Scheme::TM:
        return cfg.basicBlocking ? "basic" : "tm";
      case Scheme::TT:
        return cfg.windowCombining ? "tt" : "ttnc";
      default:
        return "?";
    }
}

RuntimeConfig
RuntimeConfig::unprotected()
{
    RuntimeConfig c;
    c.scheme = Scheme::Unprotected;
    c.insertion = Insertion::None;
    c.randomizeOnAttach = false;
    return c;
}

RuntimeConfig
RuntimeConfig::mm(Cycles ew)
{
    RuntimeConfig c;
    c.scheme = Scheme::MM;
    c.insertion = Insertion::Manual;
    c.ewTarget = ew;
    return c;
}

RuntimeConfig
RuntimeConfig::tm(Cycles ew, Cycles tew)
{
    RuntimeConfig c;
    c.scheme = Scheme::TM;
    c.insertion = Insertion::Auto;
    c.ewTarget = ew;
    c.tewTarget = tew;
    c.threadPerms = true; // maintained via system calls
    return c;
}

RuntimeConfig
RuntimeConfig::tt(Cycles ew, Cycles tew)
{
    RuntimeConfig c;
    c.scheme = Scheme::TT;
    c.insertion = Insertion::Auto;
    c.ewTarget = ew;
    c.tewTarget = tew;
    c.condInstructions = true;
    c.windowCombining = true;
    c.threadPerms = true;
    // TERP's attach performs placement inside the (already costed)
    // system call; the separate randomization cost only arises for
    // sweep-triggered in-place re-randomization.
    c.randomizeOnAttach = false;
    return c;
}

RuntimeConfig
RuntimeConfig::ttNoCombining(Cycles ew, Cycles tew)
{
    RuntimeConfig c = tt(ew, tew);
    c.windowCombining = false;
    return c;
}

RuntimeConfig
RuntimeConfig::basicSemantics(Cycles ew)
{
    RuntimeConfig c;
    c.scheme = Scheme::TM;
    c.insertion = Insertion::Auto;
    c.ewTarget = ew;
    c.threadPerms = false;
    c.basicBlocking = true;
    return c;
}

std::string
RuntimeConfig::describe() const
{
    std::ostringstream os;
    os << schemeName(scheme) << "(ew=" << cyclesToUs(ewTarget)
       << "us, tew=" << cyclesToUs(tewTarget) << "us"
       << (condInstructions ? ", cond" : "")
       << (windowCombining ? ", cb" : "")
       << (basicBlocking ? ", basic" : "")
       << (traceEnabled ? ", trace" : "") << ")";
    return os.str();
}

} // namespace core
} // namespace terp
