#include "workloads/spec.hh"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "compiler/builder.hh"

namespace terp {
namespace workloads {

namespace {

using compiler::FunctionBuilder;
using compiler::Reg;

/**
 * Emit a thread-sliced, chunked loop:
 *
 *   for chunk in [0, n_chunks):
 *       if (chunk % n_threads == tid):
 *           attach(manual_pmos)          // MERR bookends
 *           for i in [0, iters): body(chunk*iters + i)
 *           detach(manual_pmos)
 */
void
chunkedLoop(FunctionBuilder &b, Reg tid, Reg n_threads,
            std::uint64_t n_chunks, std::uint64_t iters,
            const std::vector<pm::PmoId> &manual_pmos,
            const std::function<void(Reg)> &body)
{
    b.forLoop(n_chunks, [&](Reg chunk) {
        Reg mine = b.cmpEq(b.arith(compiler::Op::Rem, chunk, n_threads),
                           tid);
        b.ifThenElse(mine, [&]() {
            for (pm::PmoId p : manual_pmos)
                b.manualAttach(p);
            Reg iters_r = b.constant(static_cast<std::int64_t>(iters));
            b.forLoop(iters, [&](Reg i) {
                Reg gi = b.add(b.mul(chunk, iters_r), i);
                body(gi);
            });
            for (pm::PmoId p : manual_pmos)
                b.manualDetach(p);
        });
    });
}

/** addr = base(pmo, 0) + idx * stride (+ byte_off) */
Reg
pmoAddr(FunctionBuilder &b, pm::PmoId pmo, Reg idx,
        std::uint64_t stride, std::uint64_t byte_off = 0)
{
    Reg base = b.pmoBase(pmo, static_cast<std::int64_t>(byte_off));
    Reg s = b.constant(static_cast<std::int64_t>(stride));
    return b.add(base, b.mul(idx, s));
}

struct Sizes
{
    std::uint64_t n;     //!< elements per scan
    std::uint64_t iters; //!< elements per manual chunk
};

Sizes
scaled(double scale, std::uint64_t n)
{
    std::uint64_t scaled_n = std::max<std::uint64_t>(
        64, static_cast<std::uint64_t>(static_cast<double>(n) * scale));
    return {scaled_n, 6};
}

/** Elements processed per IR loop iteration (unrolled in the IR). */
constexpr std::uint64_t unroll = 4;

// ------------------------------------------------------------- lbm

SpecProgram
buildLbm(pm::PmoManager &pm, const SpecParams &params)
{
    SpecProgram prog;
    pm::PmoId a = pm.create("spec.lbm.gridA", 4 * MiB).id();
    pm::PmoId bgrid = pm.create("spec.lbm.gridB", 4 * MiB).id();
    prog.pmos = {a, bgrid};

    Sizes sz = scaled(params.scale, 49152);
    const std::uint64_t cell = 64; // bytes per cell
    const std::uint64_t row = 64;  // cells per row

    FunctionBuilder b(prog.module, "lbm", 2);
    Reg tid = b.param(0), nt = b.param(1);

    auto stencil = [&](pm::PmoId src, pm::PmoId dst) {
        chunkedLoop(
            b, tid, nt, sz.n / (sz.iters * unroll), sz.iters,
            {src, dst}, [&](Reg gi) {
                Reg un = b.constant(unroll);
                Reg e0 = b.mul(gi, un);
                std::vector<Reg> vals;
                for (std::uint64_t u = 0; u < unroll; ++u) {
                    Reg ei = b.add(e0, b.constant(
                                           static_cast<std::int64_t>(u)));
                    Reg s0 = b.load(pmoAddr(b, src, ei, cell, 0));
                    Reg s1 = b.load(pmoAddr(b, src, ei, cell, 8));
                    Reg s2 = b.load(
                        pmoAddr(b, src, ei, cell, row * cell));
                    vals.push_back(b.add(b.add(s0, s1), s2));
                }
                b.compute(1400); // collision step
                for (std::uint64_t u = 0; u < unroll; ++u) {
                    Reg ei = b.add(e0, b.constant(
                                           static_cast<std::int64_t>(u)));
                    b.store(pmoAddr(b, dst, ei, cell, 0), vals[u]);
                    b.store(pmoAddr(b, dst, ei, cell, 8), vals[u]);
                }
            });
    };

    b.forLoop(2, [&](Reg) { // timesteps: A->B then B->A
        stencil(a, bgrid);
        stencil(bgrid, a);
    });
    b.ret();
    prog.entry = b.finish();
    prog.setup = [](pm::MemImage &, Rng &) {};
    return prog;
}

// ------------------------------------------------------------- mcf

SpecProgram
buildMcf(pm::PmoManager &pm, const SpecParams &params)
{
    SpecProgram prog;
    pm::PmoId nodes = pm.create("spec.mcf.nodes", 1 * MiB).id();
    pm::PmoId arcs = pm.create("spec.mcf.arcs", 2 * MiB).id();
    pm::PmoId flow = pm.create("spec.mcf.flow", 512 * KiB).id();
    pm::PmoId tree = pm.create("spec.mcf.tree", 256 * KiB).id();
    prog.pmos = {nodes, arcs, flow, tree};

    const std::uint64_t n_nodes = 16384;
    Sizes arcs_sz = scaled(params.scale, 32768);
    Sizes nodes_sz = scaled(params.scale, 16384);

    FunctionBuilder b(prog.module, "mcf", 2);
    Reg tid = b.param(0), nt = b.param(1);

    b.forLoop(2, [&](Reg) { // simplex iterations
        // Phase 1: price arcs (arcs + nodes active).
        chunkedLoop(
            b, tid, nt, arcs_sz.n / (arcs_sz.iters * unroll),
            arcs_sz.iters, {arcs, nodes}, [&](Reg gi) {
                Reg e0 = b.mul(gi, b.constant(unroll));
                std::vector<Reg> reds;
                for (std::uint64_t u = 0; u < unroll; ++u) {
                    Reg ei = b.add(e0, b.constant(
                                           static_cast<std::int64_t>(u)));
                    Reg arc_cost = b.load(pmoAddr(b, arcs, ei, 32, 0));
                    Reg head = b.load(pmoAddr(b, arcs, ei, 32, 8));
                    Reg pot = b.load(pmoAddr(b, nodes, head, 64, 0));
                    reds.push_back(b.sub(arc_cost, pot));
                }
                b.compute(1100); // reduced-cost evaluation
                for (std::uint64_t u = 0; u < unroll; ++u) {
                    Reg ei = b.add(e0, b.constant(
                                           static_cast<std::int64_t>(u)));
                    b.store(pmoAddr(b, arcs, ei, 32, 16), reds[u]);
                }
            });
        // Phase 2: update flows (flow active alone; the entering
        // arcs' reduced costs were staged through a DRAM worklist).
        chunkedLoop(
            b, tid, nt, arcs_sz.n / (arcs_sz.iters * unroll),
            arcs_sz.iters, {flow}, [&](Reg gi) {
                Reg e0 = b.mul(gi, b.constant(unroll));
                for (std::uint64_t u = 0; u < unroll; ++u) {
                    Reg ei = b.add(e0, b.constant(
                                           static_cast<std::int64_t>(u)));
                    Reg slot = b.add(
                        b.dramBase(0x10000),
                        b.arith(compiler::Op::And, ei,
                                b.constant(8191)));
                    Reg red = b.load(slot);
                    Reg fo = b.arith(compiler::Op::Shr, ei,
                                     b.constant(2));
                    Reg old = b.load(pmoAddr(b, flow, fo, 32, 0));
                    b.store(pmoAddr(b, flow, fo, 32, 0),
                            b.add(old, red));
                }
                b.compute(900); // pivot bookkeeping
            });
        // Phase 3: rebuild spanning tree (nodes + tree active).
        chunkedLoop(
            b, tid, nt, nodes_sz.n / (nodes_sz.iters * unroll),
            nodes_sz.iters, {nodes, tree}, [&](Reg gi) {
                Reg e0 = b.mul(gi, b.constant(unroll));
                for (std::uint64_t u = 0; u < unroll; ++u) {
                    Reg ei = b.add(e0, b.constant(
                                           static_cast<std::int64_t>(u)));
                    Reg pot = b.load(pmoAddr(b, nodes, ei, 64, 0));
                    Reg to = b.arith(compiler::Op::Shr, ei,
                                     b.constant(2));
                    b.store(pmoAddr(b, tree, to, 32, 0), pot);
                    b.store(pmoAddr(b, nodes, ei, 64, 8),
                            b.add(pot, ei));
                }
                b.compute(900); // basis update
            });
    });
    b.ret();
    prog.entry = b.finish();

    std::uint64_t arc_count = arcs_sz.n;
    prog.setup = [arc_count, arcs, n_nodes](pm::MemImage &img,
                                            Rng &rng) {
        // arcs[i].head = random node index.
        for (std::uint64_t i = 0; i < arc_count; ++i) {
            img.poke(pm::Oid(arcs, i * 32 + 8).raw,
                     rng.nextBelow(n_nodes));
        }
    };
    return prog;
}

// ---------------------------------------------------------- imagick

SpecProgram
buildImagick(pm::PmoManager &pm, const SpecParams &params)
{
    SpecProgram prog;
    pm::PmoId in = pm.create("spec.imagick.in", 2 * MiB).id();
    pm::PmoId out = pm.create("spec.imagick.out", 2 * MiB).id();
    pm::PmoId meta = pm.create("spec.imagick.meta", 256 * KiB).id();
    prog.pmos = {in, out, meta};

    Sizes px = scaled(params.scale, 24576);

    FunctionBuilder b(prog.module, "imagick", 2);
    Reg tid = b.param(0), nt = b.param(1);

    b.forLoop(2, [&](Reg) { // two filter passes
        // Prologue: stage the filter kernel from the metadata PMO
        // into DRAM (meta active alone, briefly).
        chunkedLoop(b, tid, nt, 1, 8, {meta}, [&](Reg gi) {
            Reg k = b.load(pmoAddr(b, meta, gi, 64, 0));
            b.store(b.add(b.dramBase(0x8000),
                          b.mul(gi, b.constant(8))),
                    k);
            b.compute(60);
        });
        // Convolution sweep: in + out active.
        chunkedLoop(
            b, tid, nt, px.n / (px.iters * unroll), px.iters,
            {in, out}, [&](Reg gi) {
                Reg e0 = b.mul(gi, b.constant(unroll));
                Reg k = b.load(b.dramBase(0x8000)); // staged kernel
                std::vector<Reg> accs;
                for (std::uint64_t u = 0; u < unroll; ++u) {
                    Reg ei = b.add(e0, b.constant(
                                           static_cast<std::int64_t>(u)));
                    Reg p0 = b.load(pmoAddr(b, in, ei, 64, 0));
                    Reg p1 = b.load(pmoAddr(b, in, ei, 64, 64));
                    accs.push_back(b.add(b.mul(p0, k), p1));
                }
                b.compute(1300); // filter arithmetic
                for (std::uint64_t u = 0; u < unroll; ++u) {
                    Reg ei = b.add(e0, b.constant(
                                           static_cast<std::int64_t>(u)));
                    b.store(pmoAddr(b, out, ei, 64, 0), accs[u]);
                }
            });
    });
    b.ret();
    prog.entry = b.finish();
    prog.setup = [](pm::MemImage &, Rng &) {};
    return prog;
}

// -------------------------------------------------------------- nab

SpecProgram
buildNab(pm::PmoManager &pm, const SpecParams &params)
{
    SpecProgram prog;
    pm::PmoId pos = pm.create("spec.nab.pos", 1 * MiB).id();
    pm::PmoId force = pm.create("spec.nab.force", 1 * MiB).id();
    pm::PmoId parm = pm.create("spec.nab.params", 256 * KiB).id();
    prog.pmos = {pos, force, parm};

    Sizes pt = scaled(params.scale, 12288);
    const std::uint64_t n_particles = 16384;

    FunctionBuilder b(prog.module, "nab", 2);
    Reg tid = b.param(0), nt = b.param(1);

    b.forLoop(2, [&](Reg) { // MD steps
        // Prologue: stage force-field parameters in DRAM (parm
        // active alone, briefly).
        chunkedLoop(b, tid, nt, 1, 8, {parm}, [&](Reg gi) {
            Reg eps = b.load(pmoAddr(b, parm, gi, 64, 0));
            b.store(b.add(b.dramBase(0x9000),
                          b.mul(gi, b.constant(8))),
                    eps);
            b.compute(60);
        });
        // Force computation (pos + force active).
        chunkedLoop(
            b, tid, nt, pt.n / (pt.iters * unroll), pt.iters,
            {pos, force}, [&](Reg gi) {
                Reg e0 = b.mul(gi, b.constant(unroll));
                Reg eps = b.load(b.dramBase(0x9000));
                std::vector<Reg> fs;
                for (std::uint64_t u = 0; u < unroll; ++u) {
                    Reg ei = b.add(e0, b.constant(
                                           static_cast<std::int64_t>(u)));
                    Reg xi = b.load(pmoAddr(b, pos, ei, 64, 0));
                    Reg j = b.load(pmoAddr(b, pos, ei, 64, 8));
                    Reg xj = b.load(pmoAddr(b, pos, j, 64, 0));
                    Reg d = b.sub(xi, xj);
                    fs.push_back(b.mul(b.mul(d, d), eps));
                }
                b.compute(1500); // pairwise potential evaluation
                for (std::uint64_t u = 0; u < unroll; ++u) {
                    Reg ei = b.add(e0, b.constant(
                                           static_cast<std::int64_t>(u)));
                    b.store(pmoAddr(b, force, ei, 64, 0), fs[u]);
                }
            });
        // Staged integration: forces -> DRAM (force active alone),
        // then DRAM -> positions (pos active alone).
        chunkedLoop(
            b, tid, nt, pt.n / (pt.iters * unroll), pt.iters,
            {force}, [&](Reg gi) {
                Reg e0 = b.mul(gi, b.constant(unroll));
                for (std::uint64_t u = 0; u < unroll; ++u) {
                    Reg ei = b.add(e0, b.constant(
                                           static_cast<std::int64_t>(u)));
                    Reg f = b.load(pmoAddr(b, force, ei, 64, 0));
                    Reg slot = b.add(
                        b.dramBase(0xa000),
                        b.mul(b.arith(compiler::Op::And, ei,
                                      b.constant(4095)),
                              b.constant(8)));
                    b.store(slot, f);
                }
                b.compute(400);
            });
        chunkedLoop(
            b, tid, nt, pt.n / (pt.iters * unroll), pt.iters,
            {pos}, [&](Reg gi) {
                Reg e0 = b.mul(gi, b.constant(unroll));
                for (std::uint64_t u = 0; u < unroll; ++u) {
                    Reg ei = b.add(e0, b.constant(
                                           static_cast<std::int64_t>(u)));
                    Reg slot = b.add(
                        b.dramBase(0xa000),
                        b.mul(b.arith(compiler::Op::And, ei,
                                      b.constant(4095)),
                              b.constant(8)));
                    Reg f = b.load(slot);
                    Reg x = b.load(pmoAddr(b, pos, ei, 64, 0));
                    b.store(pmoAddr(b, pos, ei, 64, 0), b.add(x, f));
                }
                b.compute(400); // integrator update
            });
    });
    b.ret();
    prog.entry = b.finish();

    std::uint64_t count = pt.n;
    prog.setup = [count, pos, n_particles](pm::MemImage &img,
                                           Rng &rng) {
        // pos[i].neighbour = random particle index.
        for (std::uint64_t i = 0; i < count; ++i) {
            img.poke(pm::Oid(pos, i * 64 + 8).raw,
                     rng.nextBelow(n_particles));
        }
    };
    return prog;
}

// --------------------------------------------------------------- xz

SpecProgram
buildXz(pm::PmoManager &pm, const SpecParams &params)
{
    SpecProgram prog;
    pm::PmoId in = pm.create("spec.xz.in", 2 * MiB).id();
    pm::PmoId dict = pm.create("spec.xz.dict", 1 * MiB).id();
    pm::PmoId hash = pm.create("spec.xz.hash", 1 * MiB).id();
    pm::PmoId out = pm.create("spec.xz.out", 2 * MiB).id();
    pm::PmoId stats = pm.create("spec.xz.stats", 256 * KiB).id();
    pm::PmoId match = pm.create("spec.xz.match", 2 * MiB).id();
    prog.pmos = {in, dict, hash, out, stats, match};

    Sizes blk = scaled(params.scale, 24576);
    const std::uint64_t hash_slots = 32768;

    FunctionBuilder b(prog.module, "xz", 2);
    Reg tid = b.param(0), nt = b.param(1);

    // Phase 1: hash input positions (in + hash active).
    chunkedLoop(
        b, tid, nt, blk.n / (blk.iters * unroll), blk.iters,
        {in, hash}, [&](Reg gi) {
            Reg e0 = b.mul(gi, b.constant(unroll));
            for (std::uint64_t u = 0; u < unroll; ++u) {
                Reg ei = b.add(e0, b.constant(
                                       static_cast<std::int64_t>(u)));
                Reg byte = b.load(pmoAddr(b, in, ei, 64, 0));
                Reg h = b.arith(
                    compiler::Op::And,
                    b.mul(byte, b.constant(0x9e3779b1)),
                    b.constant(
                        static_cast<std::int64_t>(hash_slots - 1)));
                Reg slot_addr = pmoAddr(b, hash, h, 16, 0);
                Reg prev = b.load(slot_addr);
                b.store(slot_addr, b.add(prev, ei));
            }
            b.compute(900); // rolling-hash maintenance
        });
    // Phase 2: match search (in + dict + match active).
    chunkedLoop(
        b, tid, nt, blk.n / (blk.iters * unroll), blk.iters,
        {in, dict, match}, [&](Reg gi) {
            Reg e0 = b.mul(gi, b.constant(unroll));
            std::vector<Reg> lens;
            for (std::uint64_t u = 0; u < unroll; ++u) {
                Reg ei = b.add(e0, b.constant(
                                       static_cast<std::int64_t>(u)));
                Reg cand = b.load(pmoAddr(b, in, ei, 64, 8));
                Reg d = b.load(pmoAddr(b, dict, cand, 64, 0));
                Reg cur = b.load(pmoAddr(b, in, ei, 64, 0));
                lens.push_back(b.sub(cur, d));
            }
            b.compute(1000); // match-length comparison
            for (std::uint64_t u = 0; u < unroll; ++u) {
                Reg ei = b.add(e0, b.constant(
                                       static_cast<std::int64_t>(u)));
                b.store(pmoAddr(b, match, ei, 64, 0), lens[u]);
            }
        });
    // Phase 3: emit (match + out active; statistics staged in DRAM).
    chunkedLoop(
        b, tid, nt, blk.n / (blk.iters * unroll), blk.iters,
        {match, out}, [&](Reg gi) {
            Reg e0 = b.mul(gi, b.constant(unroll));
            for (std::uint64_t u = 0; u < unroll; ++u) {
                Reg ei = b.add(e0, b.constant(
                                       static_cast<std::int64_t>(u)));
                Reg len = b.load(pmoAddr(b, match, ei, 64, 0));
                b.store(pmoAddr(b, out, ei, 64, 0), len);
                Reg so = b.arith(compiler::Op::And, ei,
                                 b.constant(1023));
                b.store(b.add(b.dramBase(0xb000),
                              b.mul(so, b.constant(8))),
                        len);
            }
            b.compute(900); // range-coder emission
        });
    // Phase 4: fold staged statistics back (stats active alone).
    chunkedLoop(
        b, tid, nt, 1024 / (blk.iters * unroll), blk.iters,
        {stats}, [&](Reg gi) {
            Reg e0 = b.mul(gi, b.constant(unroll));
            for (std::uint64_t u = 0; u < unroll; ++u) {
                Reg so = b.arith(
                    compiler::Op::And,
                    b.add(e0, b.constant(
                                  static_cast<std::int64_t>(u))),
                    b.constant(1023));
                Reg st = b.load(b.add(b.dramBase(0xb000),
                                      b.mul(so, b.constant(8))));
                Reg old = b.load(pmoAddr(b, stats, so, 64, 0));
                b.store(pmoAddr(b, stats, so, 64, 0),
                        b.add(old, st));
            }
            b.compute(400);
        });
    b.ret();
    prog.entry = b.finish();

    std::uint64_t count = blk.n;
    std::uint64_t dict_entries = (1 * MiB) / 64;
    prog.setup = [count, in, dict_entries](pm::MemImage &img,
                                           Rng &rng) {
        for (std::uint64_t i = 0; i < count; ++i) {
            img.poke(pm::Oid(in, i * 64).raw, rng.next() & 0xff);
            img.poke(pm::Oid(in, i * 64 + 8).raw,
                     rng.nextBelow(dict_entries));
        }
    };
    return prog;
}

} // namespace

const std::vector<std::string> &
specNames()
{
    static const std::vector<std::string> names = {
        "mcf", "lbm", "imagick", "nab", "xz"};
    return names;
}

unsigned
specPmoCount(const std::string &name)
{
    if (name == "mcf")
        return 4;
    if (name == "lbm")
        return 2;
    if (name == "imagick")
        return 3;
    if (name == "nab")
        return 3;
    if (name == "xz")
        return 6;
    TERP_PANIC("unknown SPEC workload: ", name);
}

SpecProgram
buildSpec(const std::string &name, pm::PmoManager &pmos,
          const compiler::PassConfig &pass_cfg,
          const SpecParams &params)
{
    SpecProgram prog;
    if (name == "mcf")
        prog = buildMcf(pmos, params);
    else if (name == "lbm")
        prog = buildLbm(pmos, params);
    else if (name == "imagick")
        prog = buildImagick(pmos, params);
    else if (name == "nab")
        prog = buildNab(pmos, params);
    else if (name == "xz")
        prog = buildXz(pmos, params);
    else
        TERP_PANIC("unknown SPEC workload: ", name);

    TERP_ASSERT(prog.pmos.size() == specPmoCount(name),
                "PMO count mismatch for ", name);
    if (params.runPass)
        prog.passResult = compiler::runInsertionPass(prog.module,
                                                     pass_cfg);
    return prog;
}

RunResult
runSpec(const std::string &name, const core::RuntimeConfig &cfg,
        const SpecParams &params)
{
    sim::Machine mach;
    pm::PmoManager pmos(params.seed);

    compiler::PassConfig pc;
    pc.ewLetThreshold = cfg.ewTarget;
    pc.tewLetThreshold = cfg.tewTarget;
    SpecProgram prog = buildSpec(name, pmos, pc, params);

    pm::MemImage img;
    Rng rng(params.seed ^ 0xabcdef);
    prog.setup(img, rng);

    core::Runtime rt(mach, pmos, cfg);

    std::vector<std::unique_ptr<compiler::Interpreter>> interps;
    std::vector<sim::Job *> jobs;
    for (unsigned t = 0; t < params.threads; ++t) {
        mach.spawnThread();
        interps.push_back(std::make_unique<compiler::Interpreter>(
            prog.module, rt, mach, img, prog.entry,
            std::vector<std::uint64_t>{t, params.threads}));
        jobs.push_back(interps.back().get());
    }
    mach.run(jobs, [&](Cycles now) { rt.onSweep(now); });
    rt.finalize();

    RunResult r;
    r.name = name;
    r.report = rt.report();
    r.totalCycles = mach.maxClock();
    r.exposure = rt.exposure().metricsAll(r.totalCycles,
                                          params.threads);
    r.pmoCount = prog.pmos.size();
    if (auto sink = rt.traceSink()) {
        r.trace = sink;
        r.traceAudit = std::make_shared<trace::AuditReport>(
            trace::auditTimeline(*sink, r.totalCycles,
                                 rt.exposure()));
    }
    if ((r.metrics = rt.metricsRegistry())) {
        r.metrics->setLabel("workload", name);
        std::uint64_t instrs = 0;
        for (const auto &in : interps)
            instrs += in->instructionsExecuted();
        r.metrics->counter("interp.instructions").inc(instrs);
        // Fusion effectiveness, opt-in (TERP_FUSE_STATS=1): the
        // counters land in the terp-stats posture report's interp
        // group, and gating them keeps the default posture goldens
        // byte-identical.
        const char *fs = std::getenv("TERP_FUSE_STATS");
        if (fs && *fs && std::string(fs) != "0") {
            std::uint64_t fused = 0, sites = 0;
            std::uint64_t kinds[compiler::Interpreter::kFusionKinds] =
                {};
            for (const auto &in : interps) {
                fused += in->fusedDispatches();
                sites += in->fusionCandidates();
                for (unsigned k = 0;
                     k < compiler::Interpreter::kFusionKinds; ++k)
                    kinds[k] += in->fusedDispatches(k);
            }
            r.metrics->counter("interp.fused_dispatches").inc(fused);
            r.metrics->counter("interp.fusion_candidates").inc(sites);
            for (unsigned k = 0;
                 k < compiler::Interpreter::kFusionKinds; ++k) {
                if (!kinds[k])
                    continue;
                r.metrics
                    ->counter(metrics::labeled(
                        "interp.fused_dispatches", "kind",
                        compiler::Interpreter::fusionKindName(k)))
                    .inc(kinds[k]);
            }
        }
    }
    return r;
}

} // namespace workloads
} // namespace terp
