/**
 * @file
 * WHISPER benchmark surrogates (Section VI of the paper): six
 * persistent-memory applications — echo, ycsb, tpcc, ctree, hashmap,
 * redis — each running transactions over a single 1 GB PMO with a
 * single thread, as the paper's WHISPER evaluation does.
 *
 * Each workload implements its real data structure (log + index,
 * record store, TPC-C-style tables, binary tree, chained hash map,
 * dict + lists) over the PMO allocator and memory image, and marks
 * two granularities of protection points:
 *   - manual bookends around each transaction/batch (what a MERR
 *     programmer writes; honored by the MM scheme), and
 *   - region markers around each data-structure operation (where the
 *     TERP compiler would insert CONDAT/CONDDT; honored by TM/TT).
 */

#ifndef TERP_WORKLOADS_WHISPER_HH
#define TERP_WORKLOADS_WHISPER_HH

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "core/runtime.hh"
#include "pm/mem_image.hh"
#include "pm/pmo_manager.hh"
#include "semantics/ew_tracker.hh"
#include "sim/machine.hh"
#include "trace/audit.hh"
#include "trace/trace_buffer.hh"

namespace terp {
namespace workloads {

/** Shared run parameters. */
struct WhisperParams
{
    std::uint64_t sections = 400; //!< transactions / batches to run
    std::uint64_t seed = 1234;
    std::uint64_t pmoSize = 1 * GiB;
    Cycles sweepPeriod = cyclesPerUs; //!< hardware sweep timer period
};

/** Result of one protected run. */
struct RunResult
{
    std::string name;
    core::OverheadReport report;
    semantics::ExposureMetrics exposure;
    Cycles totalCycles = 0;
    std::uint64_t pmoCount = 1;

    /**
     * Set only when cfg.traceEnabled: the full event trace and the
     * timeline auditor's differential verdict against the runtime's
     * EwTracker.
     */
    std::shared_ptr<trace::TraceSink> trace;
    std::shared_ptr<trace::AuditReport> traceAudit;

    /**
     * The run's metrics registry (null when metrics are disabled),
     * labeled with the scheme tag and workload name. Single-run
     * consumers read it directly; the parallel harness merges it
     * into bench::globalMetrics().
     */
    std::shared_ptr<metrics::Registry> metrics;
};

/** The six WHISPER workload names. */
const std::vector<std::string> &whisperNames();

/** Run one WHISPER workload under the given scheme. */
RunResult runWhisper(const std::string &name,
                     const core::RuntimeConfig &cfg,
                     const WhisperParams &params = {});

/**
 * Overhead of a protected run relative to an unprotected run of the
 * same workload/params: (protected - base) / base.
 */
double overheadVsBase(const RunResult &protected_run,
                      const RunResult &base_run);

} // namespace workloads
} // namespace terp

#endif // TERP_WORKLOADS_WHISPER_HH
