/**
 * @file
 * SPEC 2017 multi-PMO surrogates (Section VI of the paper): five
 * kernels — mcf, lbm, imagick, nab, xz — written in the mini-IR,
 * instrumented by the real Algorithm-1 insertion pass, and executed
 * by the IR interpreter on the simulated 4-core machine.
 *
 * Following the paper's methodology, every heap object larger than
 * 128 KB becomes its own PMO (mcf 4, lbm 2, imagick 3, nab 3, xz 6),
 * kernels have phase behaviour where only 1-2 PMOs are active at a
 * time, and MERR-style manual attach/detach bookends wrap each inner
 * chunk of work (honored only by the MM scheme).
 */

#ifndef TERP_WORKLOADS_SPEC_HH
#define TERP_WORKLOADS_SPEC_HH

#include <functional>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "compiler/interp.hh"
#include "compiler/ir.hh"
#include "compiler/pass.hh"
#include "core/runtime.hh"
#include "pm/pmo_manager.hh"
#include "workloads/whisper.hh" // RunResult

namespace terp {
namespace workloads {

/** A built and instrumented SPEC surrogate. */
struct SpecProgram
{
    compiler::Module module;
    std::vector<pm::PmoId> pmos;
    std::uint32_t entry = 0; //!< function(tid, n_threads)
    compiler::PassResult passResult;
    /** Pokes initial PMO content (indices, tables) into the image. */
    std::function<void(pm::MemImage &, Rng &)> setup;
};

/** The five SPEC surrogate names. */
const std::vector<std::string> &specNames();

/** PMO count of a kernel (paper Table IV: 4/2/3/3/6). */
unsigned specPmoCount(const std::string &name);

/** Run parameters. */
struct SpecParams
{
    unsigned threads = 1;
    double scale = 1.0; //!< shrinks/grows iteration counts
    std::uint64_t seed = 7;
    bool runPass = true; //!< apply the insertion pass
};

/**
 * Build a kernel: creates its PMOs in @p pmos and (optionally) runs
 * the insertion pass with thresholds from @p pass_cfg.
 */
SpecProgram buildSpec(const std::string &name, pm::PmoManager &pmos,
                      const compiler::PassConfig &pass_cfg,
                      const SpecParams &params);

/** Build + run a kernel under a scheme; aggregates over all PMOs. */
RunResult runSpec(const std::string &name,
                  const core::RuntimeConfig &cfg,
                  const SpecParams &params = {});

} // namespace workloads
} // namespace terp

#endif // TERP_WORKLOADS_SPEC_HH
