#include "workloads/alloc.hh"

#include <map>
#include <memory>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/runtime.hh"
#include "pm/pmo_manager.hh"
#include "sim/machine.hh"

namespace terp {
namespace workloads {

const std::vector<AllocProfile> &
allocProfiles()
{
    // opCycles picks the benchmark's tempo; useOps/holdOps set how
    // long objects stay written-to and how long they linger dead.
    // The mix is calibrated so that, pooled, ~95% of dead times land
    // at or above 2 us, matching Fig 8.
    static const std::vector<AllocProfile> profiles = {
        // SPEC-2017-like: long-lived buffers, slow reuse.
        {"perlbench", 900, 6, 10, 40, 32, 512},
        {"gcc", 700, 4, 8, 30, 32, 1024},
        {"mcf", 1200, 10, 6, 60, 64, 256},
        {"omnetpp", 800, 3, 12, 25, 32, 256},
        {"xalancbmk", 600, 3, 10, 20, 32, 384},
        {"deepsjeng", 1500, 12, 5, 80, 64, 2048},
        {"leela", 1000, 8, 6, 50, 32, 512},
        {"xz", 1400, 10, 4, 70, 256, 4096},
        // Heap-Layers-like: allocation-intensive, faster churn.
        {"cfrac", 350, 1, 4, 22, 16, 64},
        {"espresso", 400, 1, 5, 22, 16, 128},
        {"lindsay", 500, 2, 4, 24, 32, 256},
        {"boxed-sim", 450, 2, 5, 21, 16, 96},
        {"p2c", 380, 1, 3, 20, 16, 64},
    };
    return profiles;
}

namespace {

/** Scheduled lifecycle events, keyed by global op index. */
struct PendingObject
{
    pm::Oid oid;
    std::uint64_t lastWriteOp; //!< op index of the final write
    Cycles lastWriteCycle = 0;
    bool wroteLast = false;
};

class AllocJob : public sim::Job
{
  public:
    AllocJob(core::Runtime &rt_, pm::PmoManager &pmos_, pm::PmoId pmo_,
             const AllocProfile &prof_, std::uint64_t objects_,
             std::uint64_t seed)
        : rt(rt_), pmos(pmos_), pmo(pmo_), prof(prof_),
          objectsTarget(objects_), rng(seed)
    {
    }

    bool
    step(sim::ThreadContext &tc) override
    {
        if (freed >= objectsTarget)
            return false;

        // One application op.
        tc.work(rng.jitter(prof.opCycles, 0.5));
        ++opIdx;

        // Allocate a new object periodically.
        if (opIdx % prof.allocEvery == 0 && made < objectsTarget) {
            std::uint64_t size =
                rng.nextRange(prof.sizeMin, prof.sizeMax);
            pm::Oid oid = pmos.allocator(pmo).pmalloc(size);
            if (!oid.isNull()) {
                ++made;
                PendingObject obj;
                obj.oid = oid;
                std::uint64_t use = std::max<std::uint64_t>(
                    1, rng.jitter(prof.useOpsMean, 0.7));
                std::uint64_t hold = std::max<std::uint64_t>(
                    1, rng.jitter(prof.holdOpsMean, 0.7));
                obj.lastWriteOp = opIdx + use;
                rt.access(tc, oid, true); // initializing write
                obj.lastWriteCycle = tc.now();
                writes.emplace(obj.lastWriteOp, live.size());
                frees.emplace(opIdx + use + hold, live.size());
                live.push_back(obj);
            }
        }

        // Perform due final writes.
        while (!writes.empty() && writes.begin()->first <= opIdx) {
            PendingObject &o = live[writes.begin()->second];
            rt.access(tc, o.oid, true);
            o.lastWriteCycle = tc.now();
            o.wroteLast = true;
            writes.erase(writes.begin());
        }

        // Perform due frees and record dead times.
        while (!frees.empty() && frees.begin()->first <= opIdx) {
            PendingObject &o = live[frees.begin()->second];
            pmos.allocator(pmo).pfree(o.oid);
            Cycles dead = tc.now() - o.lastWriteCycle;
            deadTimesUs.push_back(cyclesToUs(dead));
            ++freed;
            frees.erase(frees.begin());
        }
        return freed < objectsTarget;
    }

    const std::vector<double> &deadTimes() const { return deadTimesUs; }

  private:
    core::Runtime &rt;
    pm::PmoManager &pmos;
    pm::PmoId pmo;
    AllocProfile prof;
    std::uint64_t objectsTarget;
    Rng rng;

    std::uint64_t opIdx = 0;
    std::uint64_t made = 0;
    std::uint64_t freed = 0;
    std::vector<PendingObject> live;
    std::multimap<std::uint64_t, std::size_t> writes;
    std::multimap<std::uint64_t, std::size_t> frees;
    std::vector<double> deadTimesUs;
};

} // namespace

std::vector<double>
runAllocWorkload(const AllocProfile &profile, std::uint64_t objects,
                 std::uint64_t seed)
{
    sim::Machine mach;
    pm::PmoManager pmos(seed);
    pm::Pmo &p = pmos.create("alloc." + profile.name, 64 * MiB);
    core::Runtime rt(mach, pmos,
                     core::RuntimeConfig::unprotected());

    AllocJob job(rt, pmos, p.id(), profile, objects, seed ^ 0x5a5a);
    mach.spawnThread();
    std::vector<sim::Job *> jobs{&job};
    mach.run(jobs);
    return job.deadTimes();
}

std::vector<double>
runAllAllocWorkloads(std::uint64_t objects_per_profile,
                     std::uint64_t seed)
{
    std::vector<double> pooled;
    for (const AllocProfile &p : allocProfiles()) {
        auto samples =
            runAllocWorkload(p, objects_per_profile, seed + p.opCycles);
        pooled.insert(pooled.end(), samples.begin(), samples.end());
    }
    return pooled;
}

} // namespace workloads
} // namespace terp
