#include "workloads/whisper.hh"

#include <functional>

#include "common/logging.hh"
#include "pm/palloc.hh"

namespace terp {
namespace workloads {

namespace {

/** Mix of a 64-bit hash (splittable, cheap). */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/**
 * Base class for WHISPER jobs: drives the parse / transaction state
 * machine at ~1 us step granularity so the hardware sweeper
 * interleaves realistically, and offers timed PMO access helpers.
 */
class WhisperJob : public sim::Job
{
  public:
    struct Shape
    {
        unsigned opsPerSection;  //!< micro-ops per transaction
        Cycles interOpCycles;    //!< compute between micro-ops
        Cycles parseCycles;      //!< non-persistent work per section
        double jitter = 0.45;
    };

    WhisperJob(core::Runtime &rt_, sim::Machine &mach_,
               pm::PmoManager &pmos_, pm::MemImage &img_,
               pm::PmoId pmo_, Shape shape_,
               const WhisperParams &params)
        : rt(rt_), mach(mach_), pmos(pmos_), img(img_), pmo(pmo_),
          shape(shape_), sections(params.sections),
          rng(params.seed ^ mix64(pmo_))
    {
    }

    bool
    step(sim::ThreadContext &tc) override
    {
        if (done >= sections)
            return false;
        if (!started) {
            started = true;
            startSection();
        }

        if (phase == Phase::Parse) {
            Cycles slice = std::min<Cycles>(parseLeft, cyclesPerUs);
            tc.work(slice);
            dramTouch(tc, 2);
            parseLeft -= slice;
            if (parseLeft == 0) {
                rt.manualBegin(tc, pmo, pm::Mode::ReadWrite);
                opIdx = 0;
                phase = Phase::Ops;
            }
            return true;
        }

        // One micro-op per step: region guard around the operation.
        rt.regionBegin(tc, pmo, pm::Mode::ReadWrite);
        microOp(tc, opIdx);
        rt.regionEnd(tc, pmo);
        tc.work(rng.jitter(shape.interOpCycles, 0.3));

        if (++opIdx >= opsThisSection) {
            rt.manualEnd(tc, pmo);
            ++done;
            if (done >= sections)
                return false;
            startSection();
        }
        return true;
    }

  protected:
    /** One data-structure operation (runs inside a region guard). */
    virtual void microOp(sim::ThreadContext &tc, unsigned idx) = 0;

    // ---- timed access helpers ---------------------------------------

    void
    readPmo(sim::ThreadContext &tc, pm::Oid oid,
            std::uint64_t bytes = 8)
    {
        rt.accessRange(tc, oid, bytes, false);
    }

    void
    writePmo(sim::ThreadContext &tc, pm::Oid oid,
             std::uint64_t bytes = 8)
    {
        rt.accessRange(tc, oid, bytes, true);
    }

    std::uint64_t peek(pm::Oid oid) const { return img.peek(oid.raw); }
    void poke(pm::Oid oid, std::uint64_t v) { img.poke(oid.raw, v); }

    /** A few DRAM touches (request buffers etc.). */
    void
    dramTouch(sim::ThreadContext &tc, unsigned n)
    {
        for (unsigned i = 0; i < n; ++i) {
            std::uint64_t off =
                dramCursor++ % (4096 / lineSize) * lineSize;
            mach.access(tc,
                        sim::MemAccess{pm::MemImage::dramVirtBase + off,
                                       pm::MemImage::dramPhysBase + off,
                                       false, sim::MemKind::Dram});
        }
    }

    pm::PoolAllocator &alloc() { return pmos.allocator(pmo); }

    core::Runtime &rt;
    sim::Machine &mach;
    pm::PmoManager &pmos;
    pm::MemImage &img;
    pm::PmoId pmo;
    Shape shape;
    std::uint64_t sections;
    Rng rng;

  private:
    enum class Phase { Parse, Ops };
    Phase phase = Phase::Parse;
    bool started = false;
    std::uint64_t done = 0;
    Cycles parseLeft = 0;
    unsigned opIdx = 0;
    unsigned opsThisSection = 0;
    std::uint64_t dramCursor = 0;

    void
    startSection()
    {
        phase = Phase::Parse;
        parseLeft = std::max<Cycles>(
            1, rng.jitter(shape.parseCycles, shape.jitter));
        opsThisSection = std::max<std::uint64_t>(
            1, rng.jitter(shape.opsPerSection, shape.jitter));
    }
};

// ----------------------------------------------------------- hashmap

/** Chained hash map: bucket array + allocated 64-byte records. */
class HashmapJob : public WhisperJob
{
  public:
    static constexpr std::uint64_t bucketShift = 16;
    static constexpr std::uint64_t nBuckets = 1ULL << bucketShift;
    static constexpr std::uint64_t bucketsOff = 4096;
    static constexpr std::uint64_t recordSize = 64;

    HashmapJob(core::Runtime &rt, sim::Machine &mach,
               pm::PmoManager &pmos, pm::MemImage &img, pm::PmoId pmo,
               Shape shape, const WhisperParams &p)
        : WhisperJob(rt, mach, pmos, img, pmo, shape, p),
          keyspace(200000)
    {
        alloc().reservePrefix(bucketsOff + nBuckets * 8);
        // The PMO already holds the map from previous runs: populate
        // without charging simulated time.
        for (std::uint64_t i = 0; i < 50000; ++i)
            hostInsert(rng.nextBelow(keyspace), rng.next());
    }

  protected:
    void
    microOp(sim::ThreadContext &tc, unsigned) override
    {
        std::uint64_t key = rng.nextBelow(keyspace);
        tc.work(300); // hash + request handling
        pm::Oid head = bucketOid(key);
        readPmo(tc, head);
        std::uint64_t rec = peek(head);
        unsigned hops = 0;
        pm::Oid prev = head;
        while (rec != 0 && hops < 16) {
            pm::Oid r = pm::Oid::fromRaw(rec);
            readPmo(tc, r, recordSize);
            if (peek(r) == key)
                break;
            prev = r.plus(8);
            rec = peek(r.plus(8));
            ++hops;
        }
        double roll = rng.nextDouble();
        if (rec != 0 && peek(pm::Oid::fromRaw(rec)) == key) {
            if (roll < 0.35) { // update value in place
                writePmo(tc, pm::Oid::fromRaw(rec).plus(16), 8);
                poke(pm::Oid::fromRaw(rec).plus(16), rng.next());
            } else if (roll < 0.40) { // delete
                pm::Oid r = pm::Oid::fromRaw(rec);
                poke(prev, peek(r.plus(8)));
                writePmo(tc, prev, 8);
                alloc().pfree(r);
            }
        } else if (roll < 0.30) { // insert at head
            timedInsert(tc, key);
        }
    }

  private:
    std::uint64_t keyspace;

    pm::Oid
    bucketOid(std::uint64_t key) const
    {
        std::uint64_t b = mix64(key) & (nBuckets - 1);
        return pm::Oid(pmo, bucketsOff + b * 8);
    }

    void
    hostInsert(std::uint64_t key, std::uint64_t val)
    {
        pm::Oid rec = alloc().pmalloc(recordSize);
        TERP_ASSERT(!rec.isNull(), "hashmap pool exhausted");
        pm::Oid head = bucketOid(key);
        poke(rec, key);
        poke(rec.plus(8), peek(head));
        poke(rec.plus(16), val);
        poke(head, rec.raw);
    }

    void
    timedInsert(sim::ThreadContext &tc, std::uint64_t key)
    {
        pm::Oid rec = alloc().pmalloc(recordSize);
        if (rec.isNull())
            return;
        pm::Oid head = bucketOid(key);
        poke(rec, key);
        poke(rec.plus(8), peek(head));
        poke(rec.plus(16), rng.next());
        writePmo(tc, rec, recordSize);
        poke(head, rec.raw);
        writePmo(tc, head, 8);
    }
};

// ------------------------------------------------------------- ctree

/** Binary search tree with allocated 32-byte nodes. */
class CtreeJob : public WhisperJob
{
  public:
    static constexpr std::uint64_t rootOff = 0;
    static constexpr std::uint64_t nodeSize = 32;

    CtreeJob(core::Runtime &rt, sim::Machine &mach,
             pm::PmoManager &pmos, pm::MemImage &img, pm::PmoId pmo,
             Shape shape, const WhisperParams &p)
        : WhisperJob(rt, mach, pmos, img, pmo, shape, p),
          keyspace(1u << 20)
    {
        for (std::uint64_t i = 0; i < 50000; ++i)
            hostInsert(rng.nextBelow(keyspace));
    }

  protected:
    void
    microOp(sim::ThreadContext &tc, unsigned) override
    {
        std::uint64_t key = rng.nextBelow(keyspace);
        tc.work(200);
        pm::Oid root(pmo, rootOff);
        std::uint64_t cur = peek(root);
        pm::Oid link = root;
        unsigned depth = 0;
        while (cur != 0 && depth < 40) {
            pm::Oid n = pm::Oid::fromRaw(cur);
            readPmo(tc, n, nodeSize);
            std::uint64_t k = peek(n);
            if (k == key)
                break;
            link = key < k ? n.plus(8) : n.plus(16);
            cur = peek(link);
            ++depth;
        }
        if (cur == 0 && rng.nextBool(0.35)) { // insert
            pm::Oid n = alloc().pmalloc(nodeSize);
            if (n.isNull())
                return;
            poke(n, key);
            poke(n.plus(8), 0);
            poke(n.plus(16), 0);
            writePmo(tc, n, nodeSize);
            poke(link, n.raw);
            writePmo(tc, link, 8);
        } else if (cur != 0 && rng.nextBool(0.3)) { // update value
            writePmo(tc, pm::Oid::fromRaw(cur).plus(24), 8);
        }
    }

  private:
    std::uint64_t keyspace;

    void
    hostInsert(std::uint64_t key)
    {
        pm::Oid root(pmo, rootOff);
        std::uint64_t cur = peek(root);
        pm::Oid link = root;
        while (cur != 0) {
            pm::Oid n = pm::Oid::fromRaw(cur);
            std::uint64_t k = peek(n);
            if (k == key)
                return;
            link = key < k ? n.plus(8) : n.plus(16);
            cur = peek(link);
        }
        pm::Oid n = alloc().pmalloc(nodeSize);
        TERP_ASSERT(!n.isNull());
        poke(n, key);
        poke(link, n.raw);
    }
};

// -------------------------------------------------------------- ycsb

/** Fixed-slot record store with Zipfian access (YCSB-style). */
class YcsbJob : public WhisperJob
{
  public:
    static constexpr std::uint64_t nRecords = 1ULL << 16;
    static constexpr std::uint64_t recordBytes = 128;
    static constexpr std::uint64_t baseOff = 4096;

    YcsbJob(core::Runtime &rt, sim::Machine &mach,
            pm::PmoManager &pmos, pm::MemImage &img, pm::PmoId pmo,
            Shape shape, const WhisperParams &p)
        : WhisperJob(rt, mach, pmos, img, pmo, shape, p),
          zipf(nRecords, 0.99, p.seed ^ 0x12345)
    {
        alloc().reservePrefix(baseOff + nRecords * recordBytes);
    }

  protected:
    void
    microOp(sim::ThreadContext &tc, unsigned) override
    {
        std::uint64_t k = zipf.next();
        tc.work(350);
        pm::Oid rec(pmo, baseOff + k * recordBytes);
        readPmo(tc, rec, recordBytes / 2); // read the header half
        if (rng.nextBool(0.3)) {
            writePmo(tc, rec.plus(recordBytes / 2), recordBytes / 2);
            poke(rec.plus(recordBytes / 2), rng.next());
        }
    }

  private:
    ZipfGenerator zipf;
};

// -------------------------------------------------------------- tpcc

/** New-order transactions over warehouse/district/customer/order
 *  tables laid out in one PMO. */
class TpccJob : public WhisperJob
{
  public:
    static constexpr std::uint64_t warehouseOff = 0;
    static constexpr std::uint64_t districtOff = 4096;
    static constexpr std::uint64_t customerOff = 1ULL << 20;
    static constexpr std::uint64_t itemOff = 1ULL << 24;
    static constexpr std::uint64_t nCustomers = 1ULL << 15;
    static constexpr std::uint64_t nItems = 1ULL << 16;

    TpccJob(core::Runtime &rt, sim::Machine &mach,
            pm::PmoManager &pmos, pm::MemImage &img, pm::PmoId pmo,
            Shape shape, const WhisperParams &p)
        : WhisperJob(rt, mach, pmos, img, pmo, shape, p)
    {
        alloc().reservePrefix(itemOff + nItems * lineSize);
    }

  protected:
    void
    microOp(sim::ThreadContext &tc, unsigned idx) override
    {
        tc.work(250);
        switch (idx) {
          case 0: // warehouse tax read
            readPmo(tc, pm::Oid(pmo, warehouseOff), 8);
            break;
          case 1: { // district: read + bump next-order id
            pm::Oid d(pmo,
                      districtOff + rng.nextBelow(10) * lineSize);
            readPmo(tc, d, 8);
            poke(d, peek(d) + 1);
            writePmo(tc, d, 8);
            break;
          }
          case 2: { // customer discount read
            pm::Oid c(pmo, customerOff +
                               rng.nextBelow(nCustomers) * lineSize);
            readPmo(tc, c, 8);
            break;
          }
          case 3: { // order header insert
            pm::Oid o = alloc().pmalloc(lineSize);
            if (!o.isNull()) {
                poke(o, rng.next());
                writePmo(tc, o, lineSize);
            }
            break;
          }
          default: { // one order line: item read + line insert
            pm::Oid it(pmo,
                       itemOff + rng.nextBelow(nItems) * lineSize);
            readPmo(tc, it, 8);
            pm::Oid ol = alloc().pmalloc(lineSize);
            if (!ol.isNull()) {
                poke(ol, rng.next());
                writePmo(tc, ol, lineSize);
            }
            break;
          }
        }
    }
};

// -------------------------------------------------------------- echo

/** Log-structured KV: append record, update index, bump header. */
class EchoJob : public WhisperJob
{
  public:
    static constexpr std::uint64_t headerOff = 0;
    static constexpr std::uint64_t indexOff = 4096;
    static constexpr std::uint64_t indexSlots = 1ULL << 16;
    static constexpr std::uint64_t recordBytes = 256;

    EchoJob(core::Runtime &rt, sim::Machine &mach,
            pm::PmoManager &pmos, pm::MemImage &img, pm::PmoId pmo,
            Shape shape, const WhisperParams &p)
        : WhisperJob(rt, mach, pmos, img, pmo, shape, p)
    {
        alloc().reservePrefix(indexOff + indexSlots * 8);
    }

  protected:
    void
    microOp(sim::ThreadContext &tc, unsigned) override
    {
        std::uint64_t key = rng.next();
        tc.work(400); // serialize the value
        pm::Oid rec = alloc().pmalloc(recordBytes);
        if (rec.isNull())
            return;
        poke(rec, key);
        writePmo(tc, rec, recordBytes); // sequential log append
        pm::Oid slot(pmo, indexOff +
                              (mix64(key) & (indexSlots - 1)) * 8);
        poke(slot, rec.raw);
        writePmo(tc, slot, 8);
        pm::Oid hdr(pmo, headerOff); // hot head pointer
        poke(hdr, peek(hdr) + 1);
        writePmo(tc, hdr, 8);
    }
};

// ------------------------------------------------------------- redis

/** Dict + list operations (GET / SET / LPUSH mix). */
class RedisJob : public WhisperJob
{
  public:
    static constexpr std::uint64_t dictOff = 4096;
    static constexpr std::uint64_t dictSlots = 1ULL << 14;
    static constexpr std::uint64_t listHeadsOff = 2048;
    static constexpr std::uint64_t nLists = 16;

    RedisJob(core::Runtime &rt, sim::Machine &mach,
             pm::PmoManager &pmos, pm::MemImage &img, pm::PmoId pmo,
             Shape shape, const WhisperParams &p)
        : WhisperJob(rt, mach, pmos, img, pmo, shape, p)
    {
        alloc().reservePrefix(dictOff + dictSlots * 8);
        for (std::uint64_t i = 0; i < 20000; ++i) {
            std::uint64_t key = rng.nextBelow(100000);
            pm::Oid e = alloc().pmalloc(48);
            TERP_ASSERT(!e.isNull());
            pm::Oid slot = slotOid(key);
            poke(e, key);
            poke(e.plus(8), peek(slot));
            poke(slot, e.raw);
        }
    }

  protected:
    void
    microOp(sim::ThreadContext &tc, unsigned) override
    {
        tc.work(350);
        double roll = rng.nextDouble();
        std::uint64_t key = rng.nextBelow(100000);
        if (roll < 0.4) { // GET
            pm::Oid slot = slotOid(key);
            readPmo(tc, slot);
            std::uint64_t e = peek(slot);
            unsigned hops = 0;
            while (e != 0 && hops < 8) {
                pm::Oid n = pm::Oid::fromRaw(e);
                readPmo(tc, n, 48);
                if (peek(n) == key)
                    break;
                e = peek(n.plus(8));
                ++hops;
            }
        } else if (roll < 0.8) { // SET (insert at head)
            pm::Oid e = alloc().pmalloc(48);
            if (e.isNull())
                return;
            pm::Oid slot = slotOid(key);
            readPmo(tc, slot);
            poke(e, key);
            poke(e.plus(8), peek(slot));
            poke(e.plus(16), rng.next());
            writePmo(tc, e, 48);
            poke(slot, e.raw);
            writePmo(tc, slot, 8);
        } else { // LPUSH
            pm::Oid head(pmo,
                         listHeadsOff + rng.nextBelow(nLists) * 8);
            pm::Oid node = alloc().pmalloc(32);
            if (node.isNull())
                return;
            readPmo(tc, head);
            poke(node, rng.next());
            poke(node.plus(8), peek(head));
            writePmo(tc, node, 32);
            poke(head, node.raw);
            writePmo(tc, head, 8);
        }
    }

  private:
    pm::Oid
    slotOid(std::uint64_t key) const
    {
        return pm::Oid(pmo, dictOff + (mix64(key) & (dictSlots - 1)) * 8);
    }
};

// --------------------------------------------------------- factory

struct ShapeSpec
{
    const char *name;
    WhisperJob::Shape shape;
};

const ShapeSpec shapeTable[] = {
    // name      ops/sec  interOp   parse
    {"echo",    {10, 2200, 232000}},
    {"ycsb",    {12, 1300, 74000}},
    {"tpcc",    {12, 1000, 55000}},
    {"ctree",   {8,  900,  125000}},
    {"hashmap", {17, 1000, 182000}},
    {"redis",   {8,  660,  37000}},
};

std::unique_ptr<WhisperJob>
makeJob(const std::string &name, core::Runtime &rt,
        sim::Machine &mach, pm::PmoManager &pmos, pm::MemImage &img,
        pm::PmoId pmo, const WhisperParams &params)
{
    const ShapeSpec *spec = nullptr;
    for (const auto &s : shapeTable)
        if (name == s.name)
            spec = &s;
    TERP_ASSERT(spec, "unknown WHISPER workload: ", name);
    const WhisperJob::Shape &sh = spec->shape;

    if (name == "echo")
        return std::make_unique<EchoJob>(rt, mach, pmos, img, pmo,
                                         sh, params);
    if (name == "ycsb")
        return std::make_unique<YcsbJob>(rt, mach, pmos, img, pmo,
                                         sh, params);
    if (name == "tpcc")
        return std::make_unique<TpccJob>(rt, mach, pmos, img, pmo,
                                         sh, params);
    if (name == "ctree")
        return std::make_unique<CtreeJob>(rt, mach, pmos, img, pmo,
                                          sh, params);
    if (name == "hashmap")
        return std::make_unique<HashmapJob>(rt, mach, pmos, img, pmo,
                                            sh, params);
    return std::make_unique<RedisJob>(rt, mach, pmos, img, pmo, sh,
                                      params);
}

} // namespace

const std::vector<std::string> &
whisperNames()
{
    static const std::vector<std::string> names = {
        "echo", "ycsb", "tpcc", "ctree", "hashmap", "redis"};
    return names;
}

RunResult
runWhisper(const std::string &name, const core::RuntimeConfig &cfg,
           const WhisperParams &params)
{
    sim::MachineConfig mc;
    mc.hookPeriod = params.sweepPeriod;
    sim::Machine mach(mc);
    pm::PmoManager pmos(params.seed);
    pm::Pmo &p = pmos.create("whisper." + name, params.pmoSize);
    core::Runtime rt(mach, pmos, cfg);
    pm::MemImage img;

    auto job = makeJob(name, rt, mach, pmos, img, p.id(), params);
    mach.spawnThread();
    std::vector<sim::Job *> jobs{job.get()};
    mach.run(jobs, [&](Cycles now) { rt.onSweep(now); });
    rt.finalize();

    RunResult r;
    r.name = name;
    r.report = rt.report();
    r.totalCycles = mach.maxClock();
    r.exposure = rt.exposure().metricsFor(p.id(), r.totalCycles, 1);
    if (auto sink = rt.traceSink()) {
        r.trace = sink;
        r.traceAudit = std::make_shared<trace::AuditReport>(
            trace::auditTimeline(*sink, r.totalCycles,
                                 rt.exposure()));
    }
    if ((r.metrics = rt.metricsRegistry()))
        r.metrics->setLabel("workload", name);
    return r;
}

double
overheadVsBase(const RunResult &protected_run,
               const RunResult &base_run)
{
    TERP_ASSERT(base_run.totalCycles > 0);
    return (static_cast<double>(protected_run.totalCycles) -
            static_cast<double>(base_run.totalCycles)) /
           static_cast<double>(base_run.totalCycles);
}

} // namespace workloads
} // namespace terp
