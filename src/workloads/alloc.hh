/**
 * @file
 * Allocation-lifetime workloads for the Fig 8 study: the time from
 * the last write to a heap object until its deallocation ("object
 * dead time") is the window during which a data-only attack can
 * cause persistent corruption, so its distribution sets the TEW
 * target (95% of dead times are >= 2 us, hence TEW = 2 us).
 *
 * Thirteen profiles stand in for the paper's eight SPEC 2017 and
 * five Heap Layers benchmarks: each drives a PMO allocator with its
 * own allocation rate, write count and hold duration, and the dead
 * times are measured in simulated cycles as the run executes.
 */

#ifndef TERP_WORKLOADS_ALLOC_HH
#define TERP_WORKLOADS_ALLOC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace terp {
namespace workloads {

/** One benchmark profile for the dead-time study. */
struct AllocProfile
{
    std::string name;
    Cycles opCycles;           //!< mean work per application op
    std::uint64_t allocEvery;  //!< ops between allocations
    std::uint64_t useOpsMean;  //!< ops during which the object is
                               //!< still written
    std::uint64_t holdOpsMean; //!< extra ops until deallocation
    std::uint64_t sizeMin;     //!< allocation size range
    std::uint64_t sizeMax;
};

/** The thirteen profiles (8 SPEC-like + 5 HeapLayers-like). */
const std::vector<AllocProfile> &allocProfiles();

/**
 * Run one profile and return the measured dead times (microseconds),
 * one sample per freed object.
 */
std::vector<double> runAllocWorkload(const AllocProfile &profile,
                                     std::uint64_t objects,
                                     std::uint64_t seed);

/**
 * Dead times pooled over all profiles, as Fig 8 reports.
 * @param objects_per_profile Samples per profile.
 */
std::vector<double> runAllAllocWorkloads(
    std::uint64_t objects_per_profile, std::uint64_t seed);

} // namespace workloads
} // namespace terp

#endif // TERP_WORKLOADS_ALLOC_HH
