#include "arch/perm_matrix.hh"

#include <algorithm>

#include "common/logging.hh"

namespace terp {
namespace arch {

void
PermissionMatrix::add(pm::PmoId pmo, std::uint64_t va_base,
                      std::uint64_t size, pm::Mode perm)
{
    TERP_ASSERT(!hasEntry(pmo), "permission matrix double-add, pmo ",
                pmo);
    entries.push_back({pmo, va_base, size, perm});
}

void
PermissionMatrix::remove(pm::PmoId pmo)
{
    auto it = std::find_if(entries.begin(), entries.end(),
                           [&](const Entry &e) { return e.pmo == pmo; });
    TERP_ASSERT(it != entries.end(),
                "permission matrix remove of absent entry, pmo ", pmo);
    entries.erase(it);
}

void
PermissionMatrix::widen(pm::PmoId pmo, pm::Mode perm)
{
    for (auto &e : entries) {
        if (e.pmo == pmo) {
            e.perm = static_cast<pm::Mode>(
                static_cast<unsigned>(e.perm) |
                static_cast<unsigned>(perm));
            return;
        }
    }
}

void
PermissionMatrix::rebase(pm::PmoId pmo, std::uint64_t new_base)
{
    for (auto &e : entries) {
        if (e.pmo == pmo) {
            e.base = new_base;
            return;
        }
    }
    TERP_PANIC("permission matrix rebase of absent entry");
}

MatrixHit
PermissionMatrix::check(std::uint64_t vaddr, bool write) const
{
    for (const auto &e : entries) {
        if (vaddr >= e.base && vaddr < e.base + e.size) {
            return {true, pm::modeAllows(e.perm, write), e.pmo};
        }
    }
    return {};
}

bool
PermissionMatrix::hasEntry(pm::PmoId pmo) const
{
    return std::any_of(entries.begin(), entries.end(),
                       [&](const Entry &e) { return e.pmo == pmo; });
}

} // namespace arch
} // namespace terp
