/**
 * @file
 * The TERP window-combining circular buffer (Fig 7 of the paper).
 *
 * 32 entries of {PMO id (10b), timestamp of last real attach (10b,
 * coarse-grained in hardware; full-precision here), thread counter
 * (13b), delayed-detach bit (1b)} = 34 bits per entry, about 140
 * bytes of on-chip state (0.006% of a Nehalem die per the paper's
 * Cacti estimate).
 *
 * The buffer implements the decision logic of the CONDAT and CONDDT
 * instructions (cases 1-6) and the periodic sweep that force-detaches
 * or re-randomizes PMOs whose exposure window target elapsed.
 */

#ifndef TERP_ARCH_CIRCULAR_BUFFER_HH
#define TERP_ARCH_CIRCULAR_BUFFER_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.hh"
#include "pm/oid.hh"

namespace terp {
namespace arch {

/** Outcome of executing a CONDAT instruction (Fig 7b). */
enum class CondAttachCase
{
    FirstAttach,      //!< case 1: not in CB -> full attach syscall
    SubsequentAttach, //!< case 2: in CB, DD=0 -> thread perm only
    SilentAttach,     //!< case 3: in CB, DD=1 -> elide detach+attach
};

/** Outcome of executing a CONDDT instruction (Fig 7c). */
enum class CondDetachCase
{
    PartialDetach, //!< case 4: other threads remain -> perm only
    FullDetach,    //!< case 5: last thread, EW met -> detach syscall
    DelayedDetach, //!< case 6: last thread, EW not met -> set DD
};

/** Action a sweep decided for one PMO. */
struct SweepAction
{
    pm::PmoId pmo;
    bool detach;    //!< true: fully detach; false: re-randomize
};

/** The 32-entry hardware circular buffer. */
class CircularBuffer
{
  public:
    static constexpr unsigned capacity = 32;
    static constexpr unsigned pmoIdBits = 10;
    static constexpr unsigned tsBits = 10;
    static constexpr unsigned ctrBits = 13;
    static constexpr unsigned ddBits = 1;
    static constexpr unsigned entryBits =
        pmoIdBits + tsBits + ctrBits + ddBits;

    /** Total on-chip storage in bytes (entries + head pointer). */
    static constexpr unsigned storageBytes =
        (capacity * entryBits + 7) / 8 + 4;

    /**
     * Execute the CONDAT decision logic for @p pmo at time @p now.
     * Mutates the buffer per Fig 7(b) and reports which case fired.
     * The caller performs the side effects (thread permission set,
     * attach syscall for case 1).
     */
    CondAttachCase condAttach(pm::PmoId pmo, Cycles now);

    /**
     * Execute the CONDDT decision logic for @p pmo at time @p now
     * with exposure-window target @p max_ew. Mutates the buffer per
     * Fig 7(c). The caller revokes the thread permission and, for
     * FullDetach, performs the detach syscall.
     */
    CondDetachCase condDetach(pm::PmoId pmo, Cycles now, Cycles max_ew);

    /**
     * Periodic sweep (Fig 7a): for every resident PMO whose window
     * opened >= @p max_ew ago, emit FullDetach (Ctr==0, DD set) or
     * Randomize (Ctr>0). Detached PMOs are evicted; randomized PMOs
     * get a fresh timestamp.
     */
    std::vector<SweepAction> sweep(Cycles now, Cycles max_ew);

    /** Is a PMO resident in the buffer (attached or delayed)? */
    bool resident(pm::PmoId pmo) const;

    /** Thread counter of a resident PMO. */
    unsigned counter(pm::PmoId pmo) const;

    /** Delayed-detach flag of a resident PMO. */
    bool delayed(pm::PmoId pmo) const;

    /** Timestamp of the last real attach of a resident PMO. */
    Cycles timestamp(pm::PmoId pmo) const;

    /** Number of live entries. */
    unsigned liveEntries() const;

    /** Ids of all resident PMOs, in entry order (sweep visit order). */
    std::vector<pm::PmoId> residentPmos() const;

    /** Forced eviction (used when a PMO is detached externally). */
    void evict(pm::PmoId pmo);

    struct Stats
    {
        std::uint64_t case1 = 0, case2 = 0, case3 = 0;
        std::uint64_t case4 = 0, case5 = 0, case6 = 0;
        std::uint64_t sweepDetach = 0, sweepRandomize = 0;

        std::uint64_t condAttachTotal() const
        {
            return case1 + case2 + case3;
        }
        std::uint64_t condDetachTotal() const
        {
            return case4 + case5 + case6;
        }
        /** Fraction of conditional calls that avoided a syscall. */
        double silentFraction() const;
    };

    const Stats &stats() const { return st; }
    void resetStats() { st = Stats{}; }

  private:
    struct Entry
    {
        bool valid = false;
        pm::PmoId pmo = pm::invalidPmoId;
        Cycles ts = 0;
        unsigned ctr = 0;
        bool dd = false;
    };

    std::array<Entry, capacity> entries{};
    Stats st;

    /**
     * Sweep fast path: the periodic tick fires orders of magnitude
     * more often than a window actually expires, so sweep() bails
     * without scanning when no live entry can have reached the EW
     * target yet. nLive counts valid entries; minTs is a conservative
     * lower bound on their timestamps (exact after every real scan,
     * only ever too low in between, so a stale bound costs at most a
     * scan that finds nothing — never a missed expiry).
     */
    unsigned nLive = 0;
    Cycles minTs = 0;

    Entry *find(pm::PmoId pmo);
    const Entry *find(pm::PmoId pmo) const;
    Entry &allocate(pm::PmoId pmo, Cycles now);
};

} // namespace arch
} // namespace terp

#endif // TERP_ARCH_CIRCULAR_BUFFER_HH
