/**
 * @file
 * The MERR process-wide permission matrix (Fig 1b of the paper).
 *
 * attach(PMO, perm) adds an entry mapping the PMO's mapped virtual
 * range to the granted permission; detach removes it. Every ld/st
 * checks the matrix alongside the TLB at a 1-cycle cost (Table II).
 */

#ifndef TERP_ARCH_PERM_MATRIX_HH
#define TERP_ARCH_PERM_MATRIX_HH

#include <cstdint>
#include <vector>

#include "pm/oid.hh"
#include "pm/pmo.hh"

namespace terp {
namespace arch {

/** Result of a permission-matrix lookup. */
struct MatrixHit
{
    bool present = false;   //!< an entry covers the address
    bool permitted = false; //!< and the requested access is allowed
    pm::PmoId pmo = pm::invalidPmoId;
};

/** Process-wide table of (VA range -> PMO, permission) entries. */
class PermissionMatrix
{
  public:
    /** Install the entry for an attach. */
    void add(pm::PmoId pmo, std::uint64_t va_base, std::uint64_t size,
             pm::Mode perm);

    /** Remove the entry for a detach. */
    void remove(pm::PmoId pmo);

    /**
     * Grow an entry's permission to the union with @p perm. A lowered
     * attach may request broader rights than the mode the PMO was
     * mapped with; the process-wide entry must cover every granted
     * mode (Fig 4's T2 attach(RW) after T1's attach(R)). No-op when
     * no entry covers the PMO.
     */
    void widen(pm::PmoId pmo, pm::Mode perm);

    /** Update the VA range after a re-randomization. */
    void rebase(pm::PmoId pmo, std::uint64_t new_base);

    /** Check an access against the matrix. */
    MatrixHit check(std::uint64_t vaddr, bool write) const;

    /** Entry lookup by PMO id. */
    bool hasEntry(pm::PmoId pmo) const;

    std::size_t entryCount() const { return entries.size(); }

  private:
    struct Entry
    {
        pm::PmoId pmo;
        std::uint64_t base;
        std::uint64_t size;
        pm::Mode perm;
    };
    std::vector<Entry> entries;
};

} // namespace arch
} // namespace terp

#endif // TERP_ARCH_PERM_MATRIX_HH
