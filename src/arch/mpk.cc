#include "arch/mpk.hh"

namespace terp {
namespace arch {

void
ThreadDomains::grant(unsigned tid, pm::PmoId pmo, pm::Mode mode)
{
    perms[{tid, pmo}] = mode;
}

void
ThreadDomains::revoke(unsigned tid, pm::PmoId pmo)
{
    perms.erase({tid, pmo});
}

bool
ThreadDomains::allows(unsigned tid, pm::PmoId pmo, bool write) const
{
    auto it = perms.find({tid, pmo});
    if (it == perms.end())
        return false;
    return pm::modeAllows(it->second, write);
}

bool
ThreadDomains::holds(unsigned tid, pm::PmoId pmo) const
{
    return perms.count({tid, pmo}) != 0;
}

unsigned
ThreadDomains::holderCount(pm::PmoId pmo) const
{
    unsigned n = 0;
    for (const auto &[key, mode] : perms) {
        (void)mode;
        if (key.second == pmo)
            ++n;
    }
    return n;
}

void
ThreadDomains::revokeAll(pm::PmoId pmo)
{
    for (auto it = perms.begin(); it != perms.end();) {
        if (it->first.second == pmo)
            it = perms.erase(it);
        else
            ++it;
    }
}

} // namespace arch
} // namespace terp
