#include "arch/watch_regs.hh"

#include <algorithm>

#include "common/logging.hh"

namespace terp {
namespace arch {

bool
WatchRegisterFile::watchAttach(std::uint64_t pc, pm::PmoId pmo,
                               pm::Mode mode)
{
    if (regs.size() >= capacity)
        return false;
    regs.push_back({pc, pmo, mode, true});
    return true;
}

bool
WatchRegisterFile::watchDetach(std::uint64_t pc, pm::PmoId pmo)
{
    if (regs.size() >= capacity)
        return false;
    regs.push_back({pc, pmo, pm::Mode::None, false});
    return true;
}

void
WatchRegisterFile::unwatch(std::uint64_t pc)
{
    regs.erase(std::remove_if(regs.begin(), regs.end(),
                              [&](const Watch &w) {
                                  return w.pc == pc;
                              }),
               regs.end());
}

InterceptResult
WatchRegisterFile::onFetch(std::uint64_t pc, CircularBuffer &cb,
                           Cycles now, Cycles max_ew)
{
    InterceptResult r;
    for (const Watch &w : regs) {
        if (w.pc != pc)
            continue;
        r.intercepted = true;
        if (w.isAttach) {
            CondAttachCase c = cb.condAttach(w.pmo, now);
            r.attachCase = c;
            // Only the first attach actually maps the PMO; the
            // silent cases suppress the system call.
            r.performCall = c == CondAttachCase::FirstAttach;
        } else {
            CondDetachCase c = cb.condDetach(w.pmo, now, max_ew);
            r.detachCase = c;
            r.performCall = c == CondDetachCase::FullDetach;
        }
        return r;
    }
    return r;
}

} // namespace arch
} // namespace terp
