#include "arch/circular_buffer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace terp {
namespace arch {

double
CircularBuffer::Stats::silentFraction() const
{
    // "Silent" = conditional calls that did not become a system
    // call: subsequent/silent attaches (cases 2,3) and partial or
    // delayed detaches (cases 4,6).
    std::uint64_t total = condAttachTotal() + condDetachTotal();
    if (total == 0)
        return 0.0;
    std::uint64_t silent = case2 + case3 + case4 + case6;
    return static_cast<double>(silent) / static_cast<double>(total);
}

CircularBuffer::Entry *
CircularBuffer::find(pm::PmoId pmo)
{
    for (auto &e : entries)
        if (e.valid && e.pmo == pmo)
            return &e;
    return nullptr;
}

const CircularBuffer::Entry *
CircularBuffer::find(pm::PmoId pmo) const
{
    for (const auto &e : entries)
        if (e.valid && e.pmo == pmo)
            return &e;
    return nullptr;
}

CircularBuffer::Entry &
CircularBuffer::allocate(pm::PmoId pmo, Cycles now)
{
    for (auto &e : entries) {
        if (!e.valid) {
            e = Entry{true, pmo, now, 1, false};
            minTs = nLive == 0 ? now : std::min(minTs, now);
            ++nLive;
            return e;
        }
    }
    // The paper sizes the buffer (32) above the number of
    // concurrently attached PMOs (1-2 in practice, max 6); running
    // out indicates a configuration error.
    TERP_PANIC("circular buffer full: too many live PMOs");
}

CondAttachCase
CircularBuffer::condAttach(pm::PmoId pmo, Cycles now)
{
    Entry *e = find(pmo);
    if (!e) {
        // Case 1: first attach; allocate, Ctr=1, DD=0; caller makes
        // the attach() system call.
        allocate(pmo, now);
        ++st.case1;
        return CondAttachCase::FirstAttach;
    }
    if (!e->dd) {
        // Case 2: subsequent attach by another thread.
        ++e->ctr;
        ++st.case2;
        return CondAttachCase::SubsequentAttach;
    }
    // Case 3: PMO was in delayed-detach; reset DD, Ctr=1. A pair of
    // detach and attach system calls has been elided.
    e->dd = false;
    e->ctr = 1;
    ++st.case3;
    return CondAttachCase::SilentAttach;
}

CondDetachCase
CircularBuffer::condDetach(pm::PmoId pmo, Cycles now, Cycles max_ew)
{
    Entry *e = find(pmo);
    TERP_ASSERT(e, "CONDDT on PMO not in circular buffer: ", pmo);
    TERP_ASSERT(e->ctr > 0, "CONDDT underflow on PMO ", pmo);

    --e->ctr;
    if (e->ctr > 0) {
        // Case 4: other threads still hold the PMO.
        ++st.case4;
        return CondDetachCase::PartialDetach;
    }
    if (now >= e->ts + max_ew) {
        // Case 5: last thread and the exposure window target has
        // been met or exceeded; caller performs the detach syscall.
        e->valid = false;
        --nLive;
        ++st.case5;
        return CondDetachCase::FullDetach;
    }
    // Case 6: delay the detach; the sweep (or a future CONDAT) will
    // resolve it.
    e->dd = true;
    ++st.case6;
    return CondDetachCase::DelayedDetach;
}

std::vector<SweepAction>
CircularBuffer::sweep(Cycles now, Cycles max_ew)
{
    std::vector<SweepAction> actions;
    // Quiescent fast path: nothing resident, or even the oldest
    // window is younger than the target. Either way a full scan
    // would decide no action, so skip it.
    if (nLive == 0 || now < minTs + max_ew)
        return actions;
    Cycles newMin = ~Cycles(0);
    for (auto &e : entries) {
        if (!e.valid)
            continue;
        if (now < e.ts + max_ew) {
            newMin = std::min(newMin, e.ts);
            continue; // max EW not reached yet; leave alone
        }
        if (e.ctr == 0) {
            TERP_ASSERT(e.dd, "Ctr==0 entry must be delayed-detach");
            // No thread works on the PMO: fully detach it.
            e.valid = false;
            --nLive;
            actions.push_back({e.pmo, true});
            ++st.sweepDetach;
        } else {
            // Threads still hold it: re-randomize in place and
            // restart the window.
            e.ts = now;
            newMin = std::min(newMin, e.ts);
            actions.push_back({e.pmo, false});
            ++st.sweepRandomize;
        }
    }
    minTs = nLive ? newMin : 0;
    return actions;
}

bool
CircularBuffer::resident(pm::PmoId pmo) const
{
    return find(pmo) != nullptr;
}

unsigned
CircularBuffer::counter(pm::PmoId pmo) const
{
    const Entry *e = find(pmo);
    return e ? e->ctr : 0;
}

bool
CircularBuffer::delayed(pm::PmoId pmo) const
{
    const Entry *e = find(pmo);
    return e && e->dd;
}

Cycles
CircularBuffer::timestamp(pm::PmoId pmo) const
{
    const Entry *e = find(pmo);
    TERP_ASSERT(e, "timestamp of non-resident PMO");
    return e->ts;
}

std::vector<pm::PmoId>
CircularBuffer::residentPmos() const
{
    std::vector<pm::PmoId> out;
    for (const auto &e : entries)
        if (e.valid)
            out.push_back(e.pmo);
    return out;
}

unsigned
CircularBuffer::liveEntries() const
{
    unsigned n = 0;
    for (const auto &e : entries)
        if (e.valid)
            ++n;
    return n;
}

void
CircularBuffer::evict(pm::PmoId pmo)
{
    if (Entry *e = find(pmo)) {
        e->valid = false;
        --nLive;
    }
}

} // namespace arch
} // namespace terp
