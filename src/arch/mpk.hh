/**
 * @file
 * MPK-style per-thread protection domains.
 *
 * Each attached PMO is assigned its own protection domain (cf. Intel
 * MPK pkeys); every thread holds a PKRU-like register deciding its
 * rights in each domain. Toggling a thread's permission costs the
 * measured 27 cycles (Table II, "silent conditional attach/detach")
 * which the caller charges.
 *
 * Rights live in a dense per-thread table indexed by PmoId (tids and
 * PmoIds are both small sequential integers), so the allows() check
 * on the ld/st path is two array indexes instead of a red-black tree
 * walk.
 */

#ifndef TERP_ARCH_MPK_HH
#define TERP_ARCH_MPK_HH

#include <cstdint>
#include <vector>

#include "pm/oid.hh"
#include "pm/pmo.hh"

namespace terp {
namespace arch {

/** Per-thread, per-PMO access rights (the PKRU analogue). */
class ThreadDomains
{
  public:
    /** Grant @p mode rights on @p pmo to thread @p tid. */
    void
    grant(unsigned tid, pm::PmoId pmo, pm::Mode mode)
    {
        slot(tid, pmo) = mode;
    }

    /** Revoke thread @p tid's rights on @p pmo. */
    void
    revoke(unsigned tid, pm::PmoId pmo)
    {
        if (tid < perms.size() && pmo < perms[tid].size())
            perms[tid][pmo] = pm::Mode::None;
    }

    /** Does the thread currently allow this kind of access? */
    bool
    allows(unsigned tid, pm::PmoId pmo, bool write) const
    {
        pm::Mode m = modeOf(tid, pmo);
        return m != pm::Mode::None && pm::modeAllows(m, write);
    }

    /** Does the thread hold any permission on the PMO? */
    bool
    holds(unsigned tid, pm::PmoId pmo) const
    {
        return modeOf(tid, pmo) != pm::Mode::None;
    }

    /** Number of threads holding any permission on the PMO. */
    unsigned
    holderCount(pm::PmoId pmo) const
    {
        unsigned n = 0;
        for (const auto &row : perms)
            if (pmo < row.size() && row[pmo] != pm::Mode::None)
                ++n;
        return n;
    }

    /**
     * Thread @p tid's dense rights row, indexed by PmoId (its size
     * may trail the highest PmoId ever granted; missing slots mean
     * Mode::None). Lets bulk walks (crash revocation) scan the
     * vector directly instead of paying a bounds-checked modeOf()
     * per (tid, pmo) pair.
     */
    const std::vector<pm::Mode> &
    row(unsigned tid) const
    {
        static const std::vector<pm::Mode> empty;
        return tid < perms.size() ? perms[tid] : empty;
    }

    /** Drop all rights on a PMO for every thread (full detach). */
    void
    revokeAll(pm::PmoId pmo)
    {
        for (auto &row : perms)
            if (pmo < row.size())
                row[pmo] = pm::Mode::None;
    }

  private:
    pm::Mode
    modeOf(unsigned tid, pm::PmoId pmo) const
    {
        if (tid >= perms.size() || pmo >= perms[tid].size())
            return pm::Mode::None;
        return perms[tid][pmo];
    }

    pm::Mode &
    slot(unsigned tid, pm::PmoId pmo)
    {
        if (tid >= perms.size())
            perms.resize(tid + 1);
        auto &row = perms[tid];
        if (pmo >= row.size())
            row.resize(pmo + 1, pm::Mode::None);
        return row[pmo];
    }

    std::vector<std::vector<pm::Mode>> perms; //!< [tid][pmo]
};

} // namespace arch
} // namespace terp

#endif // TERP_ARCH_MPK_HH
