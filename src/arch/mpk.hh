/**
 * @file
 * MPK-style per-thread protection domains.
 *
 * Each attached PMO is assigned its own protection domain (cf. Intel
 * MPK pkeys); every thread holds a PKRU-like register deciding its
 * rights in each domain. Toggling a thread's permission costs the
 * measured 27 cycles (Table II, "silent conditional attach/detach")
 * which the caller charges.
 */

#ifndef TERP_ARCH_MPK_HH
#define TERP_ARCH_MPK_HH

#include <cstdint>
#include <map>

#include "pm/oid.hh"
#include "pm/pmo.hh"

namespace terp {
namespace arch {

/** Per-thread, per-PMO access rights (the PKRU analogue). */
class ThreadDomains
{
  public:
    /** Grant @p mode rights on @p pmo to thread @p tid. */
    void grant(unsigned tid, pm::PmoId pmo, pm::Mode mode);

    /** Revoke thread @p tid's rights on @p pmo. */
    void revoke(unsigned tid, pm::PmoId pmo);

    /** Does the thread currently allow this kind of access? */
    bool allows(unsigned tid, pm::PmoId pmo, bool write) const;

    /** Does the thread hold any permission on the PMO? */
    bool holds(unsigned tid, pm::PmoId pmo) const;

    /** Number of threads holding any permission on the PMO. */
    unsigned holderCount(pm::PmoId pmo) const;

    /** Drop all rights on a PMO for every thread (full detach). */
    void revokeAll(pm::PmoId pmo);

  private:
    std::map<std::pair<unsigned, pm::PmoId>, pm::Mode> perms;
};

} // namespace arch
} // namespace terp

#endif // TERP_ARCH_MPK_HH
