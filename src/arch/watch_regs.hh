/**
 * @file
 * The paper's first hardware design option for conditional
 * attach/detach (Section V-B): instead of new CONDAT/CONDDT
 * instructions, the PC addresses of the attach and detach call sites
 * are registered in special watch registers; when the program
 * counter reaches one of them the hardware intercepts the call and
 * lets the system call proceed only when the circular-buffer
 * condition requires it.
 *
 * Functionally the two designs are equivalent (both front-end the
 * same Fig 7 decision logic); this module exists to demonstrate and
 * test that equivalence, and to quantify the register budget the
 * alternative needs.
 */

#ifndef TERP_ARCH_WATCH_REGS_HH
#define TERP_ARCH_WATCH_REGS_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/circular_buffer.hh"
#include "common/units.hh"
#include "pm/oid.hh"
#include "pm/pmo.hh"

namespace terp {
namespace arch {

/** What the intercept decided about the call at a watched PC. */
struct InterceptResult
{
    bool intercepted = false;  //!< a watch register matched the PC
    bool performCall = false;  //!< let the syscall execute
    //! The circular-buffer case the decision corresponds to.
    std::optional<CondAttachCase> attachCase;
    std::optional<CondDetachCase> detachCase;
};

/**
 * A small file of watch registers, each binding a call-site PC to a
 * PMO and a direction (attach or detach).
 */
class WatchRegisterFile
{
  public:
    /** Number of watch registers (attach+detach sites). */
    static constexpr unsigned capacity = 16;

    /** Register an attach call site. @return false if full. */
    bool watchAttach(std::uint64_t pc, pm::PmoId pmo, pm::Mode mode);

    /** Register a detach call site. @return false if full. */
    bool watchDetach(std::uint64_t pc, pm::PmoId pmo);

    /** Remove a watch. */
    void unwatch(std::uint64_t pc);

    /**
     * The fetch-stage hook: called with the current PC. If the PC
     * matches a watch register, run the conditional logic against
     * @p cb and report whether the underlying system call may
     * proceed (cases 1 and 5) or must be suppressed (the silent
     * cases, which only update thread permissions).
     */
    InterceptResult onFetch(std::uint64_t pc, CircularBuffer &cb,
                            Cycles now, Cycles max_ew);

    unsigned used() const
    {
        return static_cast<unsigned>(regs.size());
    }

  private:
    struct Watch
    {
        std::uint64_t pc;
        pm::PmoId pmo;
        pm::Mode mode;
        bool isAttach;
    };
    std::vector<Watch> regs;
};

} // namespace arch
} // namespace terp

#endif // TERP_ARCH_WATCH_REGS_HH
