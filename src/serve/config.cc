#include "serve/config.hh"

namespace terp {
namespace serve {

ServeConfig
ServeConfig::quick()
{
    ServeConfig c;
    c.shards = 2;
    c.workersPerShard = 4;
    c.pmosPerShard = 8;
    c.pmoSize = 4 * MiB;
    c.sessions = 200;
    c.requestsPerSession = 8;
    c.opsPerRequest = 4;
    c.thinkMean = 20 * cyclesPerUs;
    c.queueCapacity = 16;
    return c;
}

} // namespace serve
} // namespace terp
