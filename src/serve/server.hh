/**
 * @file
 * The terp-serve fleet driver: shards on a host worker pool.
 *
 * Host-side shape: a bounded work queue feeds N host worker threads;
 * every submitted task carries a promise the scheduler waits on
 * (the classic bounded-queue/promise pipeline). Simulated-side
 * shape: shards advance in lockstep *epochs* of simulated time — the
 * scheduler submits one processUntil(epochEnd) task per live shard,
 * waits for all of them (the barrier is the fleet's only
 * simulated-clock coordination), then opens the next epoch.
 *
 * Determinism for any worker count: a shard is only ever touched by
 * one task at a time, each shard's evolution is a pure function of
 * its request stream (see shard.hh), and the fleet aggregate is a
 * commutative metrics merge collected in shard-id order on the
 * coordinating thread. Host threads decide *when* a shard's epoch
 * runs, never *what* it computes — so `--workers=N` changes wall
 * time only, and the posture report is byte-identical for fixed
 * (seed, shards).
 */

#ifndef TERP_SERVE_SERVER_HH
#define TERP_SERVE_SERVER_HH

#include <memory>
#include <vector>

#include "metrics/registry.hh"
#include "serve/config.hh"
#include "serve/loadgen.hh"
#include "serve/shard.hh"

namespace terp {
namespace serve {

/** End-of-run results, everything the report/exports need. */
struct FleetResult
{
    ServeConfig cfg;
    std::uint64_t generated = 0; //!< requests in the load
    unsigned slowSessions = 0;
    Cycles horizon = 0;          //!< latest arrival
    Cycles endClock = 0;         //!< max shard clock at drain
    std::uint64_t epochs = 0;    //!< lockstep epochs executed
    double wallSeconds = 0.0;    //!< host time (not in the report)

    std::vector<ShardSummary> shards;
    /** Per-shard registries, index = shard id. */
    std::vector<std::shared_ptr<metrics::Registry>> shardMetrics;
    /**
     * Fleet roll-up: shard registries merged in shard-id order,
     * keeping per-PMO exposure series out (only meaningful within a
     * shard) exactly like the bench aggregate does.
     */
    std::shared_ptr<metrics::Registry> fleet;
};

/**
 * Run the configured fleet on @p hostWorkers host threads.
 * The result is independent of @p hostWorkers (enforced by tests
 * and the serve golden in CI).
 */
FleetResult runFleet(const ServeConfig &cfg, unsigned hostWorkers);

} // namespace serve
} // namespace terp

#endif // TERP_SERVE_SERVER_HH
