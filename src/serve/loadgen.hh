/**
 * @file
 * Deterministic-by-seed open-loop load generator.
 *
 * Each simulated client session is an independent derived Rng stream:
 * session s of a run with master seed S draws from Rng(mix(S, s)),
 * so the full transaction schedule — arrival times, tenant choices,
 * op counts, slow-client designation — is a pure function of
 * (seed, config) and in particular independent of shard count
 * *execution* and host parallelism. Requests are partitioned onto
 * shards by tenant (global pmo g lives on shard g % shards) and each
 * shard's stream is sorted by (arrival, session, seq), which is the
 * total order the shard executes them in.
 */

#ifndef TERP_SERVE_LOADGEN_HH
#define TERP_SERVE_LOADGEN_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "pm/oid.hh"
#include "serve/config.hh"

namespace terp {
namespace serve {

/** One client transaction: attach, access, (hold,) detach. */
struct Request
{
    Cycles arrival = 0;        //!< fleet-clock arrival time
    std::uint32_t session = 0; //!< issuing session id
    std::uint32_t seq = 0;     //!< per-session sequence number
    pm::PmoId globalPmo = 0;   //!< fleet-wide tenant index
    std::uint16_t ops = 0;     //!< accesses in the transaction
    bool slow = false;         //!< holds the region past the horizon
    std::uint64_t salt = 0;    //!< per-request op-offset RNG seed
};

/**
 * The pre-generated load: per-shard request streams plus summary
 * facts the report wants (totals, slow-session count, horizon).
 */
class LoadGen
{
  public:
    explicit LoadGen(const ServeConfig &cfg);

    /** Shard k's stream, sorted by (arrival, session, seq). */
    const std::vector<Request> &
    shardStream(unsigned shard) const
    {
        return streams.at(shard);
    }

    std::uint64_t totalRequests() const { return total; }
    unsigned slowSessions() const { return nSlow; }
    /** Latest arrival across the fleet. */
    Cycles horizon() const { return lastArrival; }

  private:
    std::vector<std::vector<Request>> streams;
    std::uint64_t total = 0;
    unsigned nSlow = 0;
    Cycles lastArrival = 0;
};

} // namespace serve
} // namespace terp

#endif // TERP_SERVE_LOADGEN_HH
