#include "serve/shard.hh"

#include <limits>
#include <string>

#include "common/logging.hh"
#include "pm/tx_manager.hh"
#include "semantics/ew_tracker.hh"

namespace terp {
namespace serve {

namespace {

constexpr Cycles never = std::numeric_limits<Cycles>::max();

core::DomainConfig
domainConfig(const ServeConfig &cfg, unsigned shard)
{
    core::DomainConfig dc;
    dc.runtime = cfg.runtime.withExposureSlo(cfg.ewSlo, cfg.tewSlo);
    dc.machine = cfg.machine;
    // Workers are simulated threads of this shard's machine.
    dc.machine.cores = cfg.workersPerShard;
    // Placement randomness is owned per shard and derived from the
    // fleet seed, never shared (the old batch harnesses reused one
    // constant seed because there was only ever one manager).
    dc.placementSeed = cfg.seed * 0x9e3779b97f4a7c15ULL + shard;
    dc.shardId = shard;
    dc.persistence = cfg.persistence;
    return dc;
}

} // namespace

ServeShard::ServeShard(const ServeConfig &cfg_, unsigned shard,
                       std::vector<Request> stream_)
    : cfg(cfg_), dom(domainConfig(cfg_, shard)),
      stream(std::move(stream_))
{
    // Tenant PMOs: local index l holds global tenant l*shards+shard.
    auto &ewt = dom.runtime().exposureMut();
    for (unsigned l = 0; l < cfg.pmosPerShard; ++l) {
        std::string name = "tenant" + std::to_string(shard) + "." +
                           std::to_string(l);
        auto &p = dom.pmos().create(name, cfg.pmoSize);
        tenants.push_back(p.id());
        // Tenant label on the tracker: per-tenant blame counters.
        ewt.setTenant(p.id(), name);
    }
    queuedPerTenant.assign(cfg.pmosPerShard, 0);
    holdersSlow.assign(cfg.pmosPerShard, 0);

    workers.resize(cfg.workersPerShard);
    for (auto &w : workers)
        w.tid = dom.machine().spawnThread().tid();
    if (cfg.runtime.insertion == core::Insertion::Manual)
        manualHeld.assign(cfg.pmosPerShard, 0);

    if (auto reg = dom.runtime().metricsRegistry()) {
        mArrived = &reg->counter("serve.requests_arrived");
        mDone = &reg->counter("serve.requests_done");
        mShed = &reg->counter("serve.requests_shed");
        mSlow = &reg->counter("serve.requests_slow");
        mDepth = &reg->gauge("serve.queue_depth");
        mLatency = &reg->histogram("serve.request_latency_cycles");
        mWait = &reg->histogram("serve.queue_wait_cycles");
    }

    if (cfg.tenantEwBudget > 0) {
        burn.resize(cfg.pmosPerShard);
        if (auto reg = dom.runtime().metricsRegistry()) {
            for (unsigned l = 0; l < cfg.pmosPerShard; ++l) {
                std::string base = metrics::labeled(
                    "serve.slo_burn", "tenant",
                    "tenant" + std::to_string(shard) + "." +
                        std::to_string(l));
                burn[l].fast = &reg->gauge(
                    metrics::labeled(base, "win", "fast"));
                burn[l].slow = &reg->gauge(
                    metrics::labeled(base, "win", "slow"));
            }
            mShedAdvised = &reg->counter("serve.shed_advised");
        }
        ewt.setCloseHook(
            [this](pm::PmoId pmo, Cycles closeAt, Cycles len) {
                onWindowClose(pmo, closeAt, len);
            });
    }
}

void
ServeShard::admit(const Request &req)
{
    ++sum.arrived;
    if (mArrived)
        mArrived->inc();
    unsigned l = static_cast<unsigned>(req.globalPmo / cfg.shards);
    if (shedAdvised(l) && mShedAdvised)
        mShedAdvised->inc();
    if (queue.size() >= cfg.queueCapacity) {
        // Backpressure: shed, observably. The session's later
        // requests still arrive (open-loop clients don't wait).
        ++sum.shed;
        if (mShed)
            mShed->inc();
        if (auto sink = dom.runtime().traceSink())
            sink->emit(trace::TraceSink::kernelTid,
                       trace::EventKind::RequestShed, req.arrival,
                       trace::noPmo, req.session);
        return;
    }
    queue.push_back(req);
    // First waiter for this tenant: its exposure is now queue-bound,
    // not app- or sweeper-bound, until the backlog drains.
    if (++queuedPerTenant[l] == 1)
        dom.runtime().exposureMut().setIdleCause(
            tenants[l], semantics::BlameCause::QueueWait,
            req.arrival);
    if (queue.size() > sum.queueHwm)
        sum.queueHwm = queue.size();
    if (mDepth)
        mDepth->set(static_cast<double>(queue.size()));
}

void
ServeShard::assign(Worker &w, Cycles at)
{
    TERP_ASSERT(!queue.empty(), "ServeShard: assign from empty queue");
    w.req = queue.front();
    queue.pop_front();
    if (mDepth)
        mDepth->set(static_cast<double>(queue.size()));

    auto &tc = dom.machine().thread(w.tid);
    // Idle span between requests is the server's own time, not
    // protection overhead.
    tc.syncTo(at, sim::Charge::Work);
    w.phase = Phase::Begin;
    w.localIdx = static_cast<unsigned>(w.req.globalPmo / cfg.shards);
    w.localPmo = tenants.at(w.localIdx);
    w.opIdx = 0;
    w.holdLeft = w.req.slow ? cfg.slowHold : 0;
    w.startedAt = at;
    w.ops = Rng(w.req.salt);
    TERP_ASSERT(queuedPerTenant[w.localIdx] > 0,
                "ServeShard: tenant queue count underflow");
    if (--queuedPerTenant[w.localIdx] == 0)
        dom.runtime().exposureMut().clearIdleCause(w.localPmo, at);
    if (mWait)
        mWait->record(at - w.req.arrival);
    if (auto sink = dom.runtime().traceSink())
        sink->emit(tc.tid(), trace::EventKind::RequestStart, at,
                   w.localPmo, w.req.session);
}

void
ServeShard::stepWorker(Worker &w)
{
    auto &tc = dom.machine().thread(w.tid);
    auto &rt = dom.runtime();

    switch (w.phase) {
      case Phase::Begin: {
        // Both bookends, whisper-style: manualBegin is a no-op
        // unless the scheme uses Manual insertion (MM), regionBegin
        // unless Auto (TM/TT/ablations) — so one request shape
        // serves every scheme. Under basic blocking the begin may
        // park the thread; the event loop skips blocked workers
        // until the holder's end wakes this one, and we retry from
        // the same phase.
        if (!manualHeld.empty()) {
            TERP_ASSERT(!manualHeld[w.localIdx],
                        "ServeShard: Begin on a held manual PMO");
            manualHeld[w.localIdx] = 1;
        }
        rt.manualBegin(tc, w.localPmo, pm::Mode::ReadWrite);
        if (rt.regionBegin(tc, w.localPmo, pm::Mode::ReadWrite) ==
            core::GuardResult::Blocked)
            return;
        w.phase = Phase::Op;
        return;
      }
      case Phase::Op: {
        std::uint64_t span = cfg.pmoSize > cfg.bytesPerOp
                                 ? cfg.pmoSize - cfg.bytesPerOp
                                 : 1;
        std::uint64_t off = w.ops.nextBelow(span) & ~std::uint64_t{7};
        bool write = w.ops.nextBool(0.5);
        rt.accessRange(tc, pm::Oid(w.localPmo, off), cfg.bytesPerOp,
                       write);
        dom.machine().execute(tc,
                              w.ops.jitter(cfg.instrPerOp, 0.5));
        if (++w.opIdx >= w.req.ops) {
            if (w.holdLeft > 0) {
                w.phase = Phase::Hold;
                // Slow client keeping the region open: attribute
                // the tenant's exposure to the client, not the app.
                if (++holdersSlow[w.localIdx] == 1)
                    rt.exposureMut().setHoldCause(
                        w.localPmo,
                        semantics::BlameCause::SlowClientHold,
                        tc.now());
            } else {
                w.phase = Phase::End;
            }
        }
        return;
      }
      case Phase::Hold: {
        // A slow client sits inside its protection region. Advance
        // in sweeper-period chunks so the event loop can interleave
        // sweep ticks with the hold — this is exactly the situation
        // that forces the sweeper to act on a live window.
        Cycles chunk = dom.machine().config().hookPeriod;
        if (chunk > w.holdLeft)
            chunk = w.holdLeft;
        tc.work(chunk);
        w.holdLeft -= chunk;
        if (w.holdLeft == 0) {
            w.phase = Phase::End;
            if (--holdersSlow[w.localIdx] == 0)
                rt.exposureMut().clearHoldCause(w.localPmo,
                                                tc.now());
        }
        return;
      }
      case Phase::End: {
        // The request's durable transaction, inside the protection
        // bookends: a multi-op TxManager commit on the tenant PMO.
        // Busy means another worker's transaction holds this tenant
        // right now — the request completes without one (counted in
        // pm.txn_busy), it does not wait.
        if (cfg.txnWrites > 0 && dom.persistence()) {
            pm::TxManager &txm = *rt.tx();
            bool redo = w.ops.nextBool(0.5);
            if (txm.begin(tc, w.tid, {w.localPmo},
                          redo ? pm::TxKind::Redo
                               : pm::TxKind::Undo)) {
                std::uint64_t span = cfg.pmoSize - 64;
                for (unsigned j = 0; j < cfg.txnWrites; ++j) {
                    std::uint64_t off =
                        w.ops.nextBelow(span) & ~std::uint64_t{7};
                    std::uint64_t val =
                        (static_cast<std::uint64_t>(w.req.session)
                         << 16) |
                        j;
                    txm.write(tc, w.tid, pm::Oid(w.localPmo, off),
                              val);
                }
                txm.commit(tc, w.tid);
            }
        }
        rt.regionEnd(tc, w.localPmo);
        rt.manualEnd(tc, w.localPmo);
        if (!manualHeld.empty()) {
            manualHeld[w.localIdx] = 0;
            // Waiters resume at the release time, like threads
            // woken from a runtime block.
            for (auto &o : workers)
                if (o.phase == Phase::Begin &&
                    o.localPmo == w.localPmo && o.tid != w.tid)
                    dom.machine().thread(o.tid).syncTo(
                        tc.now(), sim::Charge::Other);
        }
        complete(w);
        return;
      }
      case Phase::Idle:
        TERP_ASSERT(false, "ServeShard: stepped an idle worker");
    }
}

void
ServeShard::onWindowClose(pm::PmoId pmo, Cycles closeAt, Cycles len)
{
    unsigned l = 0;
    while (l < tenants.size() && tenants[l] != pmo)
        ++l;
    if (l >= burn.size())
        return;
    auto &b = burn[l];
    // Tumbling buckets aligned to t=0; a window is charged whole to
    // the bucket containing its close time (windows longer than the
    // bucket can legitimately push burn past 1/budget — that's the
    // alert firing, not an accounting bug).
    auto bump = [&](std::uint64_t &bucket, Cycles &sumC, Cycles win,
                    metrics::Gauge *g) {
        if (win == 0)
            return 0.0;
        std::uint64_t now = closeAt / win;
        if (now != bucket) {
            bucket = now;
            sumC = 0;
        }
        sumC += len;
        double rate = static_cast<double>(sumC) /
                      static_cast<double>(win) / cfg.tenantEwBudget;
        if (g)
            g->set(rate);
        return rate;
    };
    double f = bump(b.fastBucket, b.fastSum, cfg.burnFast, b.fast);
    double s = bump(b.slowBucket, b.slowSum, cfg.burnSlow, b.slow);
    b.alert = f > 1.0 && s > 1.0;
}

bool
ServeShard::shedAdvised(unsigned localIdx) const
{
    return localIdx < burn.size() && burn[localIdx].alert;
}

void
ServeShard::complete(Worker &w)
{
    auto &tc = dom.machine().thread(w.tid);
    ++sum.completed;
    if (mDone)
        mDone->inc();
    if (w.req.slow) {
        ++sum.slowCompleted;
        if (mSlow)
            mSlow->inc();
    }
    if (mLatency)
        mLatency->record(tc.now() - w.req.arrival);
    if (auto sink = dom.runtime().traceSink())
        sink->emit(tc.tid(), trace::EventKind::RequestDone, tc.now(),
                   w.localPmo, w.req.session);
    w.phase = Phase::Idle;
}

bool
ServeShard::processUntil(Cycles limit)
{
    for (;;) {
        // Candidate event times. Priorities at equal times:
        // arrival (0) < assignment (1) < worker op (2); workers tie
        // by id. This total order is what makes the shard's whole
        // evolution reproducible.
        Cycles tArr =
            nextArrival < stream.size() ? stream[nextArrival].arrival
                                        : never;

        Worker *idle = nullptr;
        Worker *busy = nullptr;
        for (auto &w : workers) {
            auto &tc = dom.machine().thread(w.tid);
            if (w.phase == Phase::Idle) {
                if (!idle ||
                    tc.now() <
                        dom.machine().thread(idle->tid).now())
                    idle = &w;
            } else if (w.phase == Phase::Begin &&
                       !manualHeld.empty() &&
                       manualHeld[w.localIdx]) {
                // Serialized behind a manual region; resumes when
                // the holder's End releases the tenant.
            } else if (!tc.blocked()) {
                if (!busy ||
                    tc.now() <
                        dom.machine().thread(busy->tid).now())
                    busy = &w;
            }
        }

        Cycles tAssign = never;
        if (idle && !queue.empty()) {
            Cycles free = dom.machine().thread(idle->tid).now();
            tAssign = free > queue.front().arrival
                          ? free
                          : queue.front().arrival;
        }
        Cycles tOp =
            busy ? dom.machine().thread(busy->tid).now() : never;

        Cycles t = tArr;
        int what = 0;
        if (tAssign < t) {
            t = tAssign;
            what = 1;
        }
        if (tOp < t) {
            t = tOp;
            what = 2;
        }
        if (t == never)
            return true; // drained
        if (t >= limit)
            return false; // epoch boundary; state carries over

        // Fire every sweep boundary up to the event's time first —
        // the same "sweeper never lags the minimum runnable clock"
        // rule Machine::run applies in batch runs.
        dom.sweepTo(t);

        switch (what) {
          case 0:
            admit(stream[nextArrival++]);
            break;
          case 1:
            assign(*idle, t);
            break;
          default:
            stepWorker(*busy);
            break;
        }
    }
}

void
ServeShard::finish()
{
    TERP_ASSERT(processUntil(never),
                "ServeShard: finish() before the shard drained");
    sum.endClock = dom.machine().maxClock();

    // Post-run drain: with every worker marked done the sweeper's
    // detaches are chargeless (no live thread to bill), matching the
    // batch harnesses' end-of-run path. Run it past the exposure
    // horizon so delayed detaches and forced randomizations land.
    for (auto &w : workers)
        dom.machine().thread(w.tid).done = true;
    Cycles horizon = sum.endClock + cfg.runtime.ewTarget +
                     2 * dom.machine().config().hookPeriod;
    dom.sweepTo(horizon);
    dom.finalize();
}

} // namespace serve
} // namespace terp
