/**
 * @file
 * One serving shard: a bounded request queue feeding a pool of
 * simulated worker threads over an isolated core::ShardDomain.
 *
 * The shard is a single-host-threaded discrete-event simulation.
 * Three event sources — the arrival stream, idle-worker assignment,
 * and the next op of each busy worker — are processed in global
 * simulated-time order (ties broken arrival < assignment < op,
 * then by worker id), and the domain's sweeper is advanced to each
 * event's timestamp before it executes. Time is therefore globally
 * monotone within the shard, exactly as under the batch scheduler
 * (sim::Machine::run fires sweep boundaries at the minimum runnable
 * clock), and the whole evolution is a pure function of the shard's
 * request stream. Host threads never share a shard, so running K
 * shards on any number of host workers yields identical results.
 *
 * Queueing model: an arrival that finds all workers busy waits in a
 * bounded FIFO; when the queue is full the request is *shed* —
 * counted, traced, and reported, never silently dropped. A request
 * executes as: regionBegin (attach path of the configured scheme),
 * ops timed cache-line accesses with compute in between, an optional
 * slow-client hold that keeps the region open past the sweeper
 * horizon, then regionEnd. Under the basic-blocking ablation a
 * worker whose regionBegin blocks simply stays ineligible until the
 * holder's regionEnd wakes it — the event loop skips blocked
 * workers, and the holder is by construction not blocked, so the
 * shard cannot deadlock.
 */

#ifndef TERP_SERVE_SHARD_HH
#define TERP_SERVE_SHARD_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.hh"
#include "core/domain.hh"
#include "serve/config.hh"
#include "serve/loadgen.hh"

namespace terp {
namespace serve {

/** Deterministic end-of-run facts for the report. */
struct ShardSummary
{
    std::uint64_t arrived = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t slowCompleted = 0;
    std::uint64_t queueHwm = 0;
    Cycles endClock = 0;
};

/** One shard of the serving fleet. */
class ServeShard
{
  public:
    /**
     * @param cfg    Fleet configuration (shared by all shards).
     * @param shard  This shard's id in [0, cfg.shards).
     * @param stream The shard's request stream from the LoadGen,
     *               copied; sorted by (arrival, session, seq).
     */
    ServeShard(const ServeConfig &cfg, unsigned shard,
               std::vector<Request> stream);

    ServeShard(const ServeShard &) = delete;
    ServeShard &operator=(const ServeShard &) = delete;

    /**
     * Advance the discrete-event loop, processing every event with
     * timestamp < limit. Returns true when the shard is drained:
     * stream exhausted, queue empty, all workers idle.
     */
    bool processUntil(Cycles limit);

    /**
     * End of run: mark the simulated workers done, run the sweeper
     * past the last exposure horizon so delayed detaches land (the
     * chargeless post-run drain path), and finalize the runtime.
     */
    void finish();

    const ShardSummary &summary() const { return sum; }
    core::ShardDomain &domain() { return dom; }
    const core::ShardDomain &domain() const { return dom; }
    unsigned id() const { return dom.shardId(); }

  private:
    /** What a simulated worker is doing. */
    enum class Phase
    {
        Idle,
        Begin, //!< about to regionBegin (retried if Blocked)
        Op,    //!< executing timed accesses
        Hold,  //!< slow client keeping the region open
        End,   //!< about to regionEnd and complete
    };

    struct Worker
    {
        unsigned tid = 0;
        Phase phase = Phase::Idle;
        Request req;
        pm::PmoId localPmo = 0;
        unsigned localIdx = 0; //!< tenant index (manualHeld slot)
        unsigned opIdx = 0;
        Cycles holdLeft = 0;
        Cycles startedAt = 0; //!< assignment time (for latency)
        Rng ops{0};           //!< per-request op-offset stream
    };

    const ServeConfig cfg;
    core::ShardDomain dom;
    std::vector<Request> stream;
    std::size_t nextArrival = 0;

    std::vector<Worker> workers;
    std::deque<Request> queue;
    std::vector<pm::PmoId> tenants; //!< local index -> PmoId
    /**
     * Manual-insertion schemes (MM) allow one manual region per PMO
     * at a time process-wide, so the server serializes requests per
     * tenant: a worker whose Begin targets a held PMO is ineligible
     * until the holder's manualEnd releases it (and is then synced
     * to the release time, like a woken blocked thread).
     */
    std::vector<char> manualHeld;

    // ---- exposure provenance + burn-rate alerting ----------------
    /**
     * Per-tenant queued-request counts: while a tenant has requests
     * waiting in the shard queue, its open-but-unheld exposure spans
     * are attributed to QueueWait instead of the app/sweeper split
     * (the window is open because the server can't drain its work).
     */
    std::vector<unsigned> queuedPerTenant;
    /** Workers inside Phase::Hold per tenant (SlowClientHold). */
    std::vector<unsigned> holdersSlow;
    /**
     * Per-tenant SLO burn-rate state (tumbling fast/slow windows).
     * Empty unless cfg.tenantEwBudget > 0; a closed exposure window
     * is charged whole to the bucket containing its close time.
     */
    struct BurnState
    {
        std::uint64_t fastBucket = 0;
        std::uint64_t slowBucket = 0;
        Cycles fastSum = 0;
        Cycles slowSum = 0;
        bool alert = false; //!< both windows burning > 1.0
        metrics::Gauge *fast = nullptr;
        metrics::Gauge *slow = nullptr;
    };
    std::vector<BurnState> burn;
    metrics::Counter *mShedAdvised = nullptr;

    ShardSummary sum;

    // Cached instruments (null when metrics are off).
    metrics::Counter *mArrived = nullptr;
    metrics::Counter *mDone = nullptr;
    metrics::Counter *mShed = nullptr;
    metrics::Counter *mSlow = nullptr;
    metrics::Gauge *mDepth = nullptr;
    metrics::LogHistogram *mLatency = nullptr;
    metrics::LogHistogram *mWait = nullptr;

    void admit(const Request &req);
    void assign(Worker &w, Cycles at);
    void stepWorker(Worker &w);
    void complete(Worker &w);
    /** EwTracker close hook: advance the tenant's burn windows. */
    void onWindowClose(pm::PmoId pmo, Cycles closeAt, Cycles len);
    /**
     * Shed-decision hook, advisory stub: true when the tenant's fast
     * AND slow burn both exceed 1.0. Admits for such a tenant bump
     * serve.shed_advised; nothing is actually shed.
     */
    bool shedAdvised(unsigned localIdx) const;
};

} // namespace serve
} // namespace terp

#endif // TERP_SERVE_SHARD_HH
