#include "serve/report.hh"

#include <cstdio>
#include <sstream>

#include "core/config.hh"
#include "metrics/export.hh"

namespace terp {
namespace serve {

namespace {

std::string
us(Cycles c)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.2fus", cyclesToUs(c));
    return buf;
}

std::uint64_t
counterOf(const metrics::Registry *reg, const std::string &name)
{
    if (!reg)
        return 0;
    const metrics::Counter *c = reg->findCounter(name);
    return c ? c->value() : 0;
}

/** "p50=..us p95=..us p99=..us p999=..us" for a histogram, or "-". */
std::string
tail(const metrics::Registry *reg, const std::string &name)
{
    const metrics::LogHistogram *h =
        reg ? reg->findHistogram(name) : nullptr;
    if (!h || h->summary().count() == 0)
        return "-";
    std::ostringstream os;
    os << "p50=" << us(h->quantile(0.50))
       << " p95=" << us(h->quantile(0.95))
       << " p99=" << us(h->quantile(0.99))
       << " p999=" << us(h->quantile(0.999));
    return os.str();
}

std::string
p99(const metrics::Registry *reg, const std::string &name)
{
    const metrics::LogHistogram *h =
        reg ? reg->findHistogram(name) : nullptr;
    if (!h || h->summary().count() == 0)
        return "-";
    return us(h->quantile(0.99));
}

const char *ewAll = "exposure.ew_cycles{pmo=\"all\"}";
const char *tewAll = "exposure.tew_cycles{pmo=\"all\"}";
const char *sloEw = "exposure.slo_violations{win=\"ew\"}";
const char *sloTew = "exposure.slo_violations{win=\"tew\"}";
const char *latency = "serve.request_latency_cycles";
const char *wait = "serve.queue_wait_cycles";

} // namespace

std::string
postureReport(const FleetResult &res)
{
    const ServeConfig &cfg = res.cfg;
    std::ostringstream os;
    char buf[160];

    os << "terp-serve posture report\n";
    std::snprintf(buf, sizeof(buf),
                  "config: scheme=%s shards=%u workers/shard=%u "
                  "pmos/shard=%u sessions=%u reqs/session=%u "
                  "seed=%llu\n",
                  core::schemeTag(cfg.runtime), cfg.shards,
                  cfg.workersPerShard, cfg.pmosPerShard,
                  cfg.sessions, cfg.requestsPerSession,
                  static_cast<unsigned long long>(cfg.seed));
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "load: zipf=%.2f slow=%.1f%% hold=%s queue-cap=%u "
                  "slo-ew=%s slo-tew=%s\n",
                  cfg.zipfTheta, 100.0 * cfg.slowFraction,
                  us(cfg.slowHold).c_str(), cfg.queueCapacity,
                  us(cfg.ewSlo).c_str(), us(cfg.tewSlo).c_str());
    os << buf;

    std::uint64_t arrived = 0, completed = 0, shed = 0, slow = 0,
                  hwm = 0;
    for (const ShardSummary &s : res.shards) {
        arrived += s.arrived;
        completed += s.completed;
        shed += s.shed;
        slow += s.slowCompleted;
        if (s.queueHwm > hwm)
            hwm = s.queueHwm;
    }
    std::snprintf(buf, sizeof(buf),
                  "stream: generated=%llu arrived=%llu "
                  "completed=%llu shed=%llu slow-completed=%llu "
                  "slow-sessions=%u\n",
                  static_cast<unsigned long long>(res.generated),
                  static_cast<unsigned long long>(arrived),
                  static_cast<unsigned long long>(completed),
                  static_cast<unsigned long long>(shed),
                  static_cast<unsigned long long>(slow),
                  res.slowSessions);
    os << buf;
    os << "clock: horizon=" << us(res.horizon)
       << " end=" << us(res.endClock) << " epochs=" << res.epochs
       << "\n";

    const metrics::Registry *fleet = res.fleet.get();
    os << "fleet: latency " << tail(fleet, latency) << "\n";
    os << "fleet: queue-wait " << tail(fleet, wait)
       << " depth-hwm=" << hwm << "\n";
    os << "fleet: EW  " << tail(fleet, ewAll) << "\n";
    os << "fleet: TEW " << tail(fleet, tewAll) << "\n";
    os << "fleet: slo-violations ew=" << counterOf(fleet, sloEw)
       << " tew=" << counterOf(fleet, sloTew) << "\n";

    for (std::size_t k = 0; k < res.shards.size(); ++k) {
        const ShardSummary &s = res.shards[k];
        const metrics::Registry *reg =
            k < res.shardMetrics.size() ? res.shardMetrics[k].get()
                                        : nullptr;
        os << "shard " << k << ": completed=" << s.completed
           << " shed=" << s.shed << " qhwm=" << s.queueHwm
           << " lat-p99=" << p99(reg, latency)
           << " ew-p99=" << p99(reg, ewAll)
           << " tew-p99=" << p99(reg, tewAll)
           << " slo-ew=" << counterOf(reg, sloEw)
           << " slo-tew=" << counterOf(reg, sloTew) << "\n";
    }
    return os.str();
}

std::string
toJson(const FleetResult &res, unsigned hostWorkers)
{
    const ServeConfig &cfg = res.cfg;
    std::ostringstream os;
    char buf[64];
    os << "{\n";
    os << "  \"tool\": \"terp-serve\",\n";
    os << "  \"config\": {\n";
    os << "    \"scheme\": \"" << core::schemeTag(cfg.runtime)
       << "\",\n";
    os << "    \"seed\": " << cfg.seed << ",\n";
    os << "    \"shards\": " << cfg.shards << ",\n";
    os << "    \"workers_per_shard\": " << cfg.workersPerShard
       << ",\n";
    os << "    \"pmos_per_shard\": " << cfg.pmosPerShard << ",\n";
    os << "    \"sessions\": " << cfg.sessions << ",\n";
    os << "    \"requests_per_session\": " << cfg.requestsPerSession
       << ",\n";
    std::snprintf(buf, sizeof(buf), "%.17g", cfg.zipfTheta);
    os << "    \"zipf_theta\": " << buf << ",\n";
    std::snprintf(buf, sizeof(buf), "%.17g", cfg.slowFraction);
    os << "    \"slow_fraction\": " << buf << ",\n";
    os << "    \"slow_hold_cycles\": " << cfg.slowHold << ",\n";
    os << "    \"queue_capacity\": " << cfg.queueCapacity << ",\n";
    os << "    \"ew_slo_cycles\": " << cfg.ewSlo << ",\n";
    os << "    \"tew_slo_cycles\": " << cfg.tewSlo << "\n";
    os << "  },\n";
    os << "  \"host\": {\n";
    os << "    \"workers\": " << hostWorkers << ",\n";
    std::snprintf(buf, sizeof(buf), "%.6f", res.wallSeconds);
    os << "    \"wall_s\": " << buf << "\n";
    os << "  },\n";
    os << "  \"fleet\": {\n";
    os << "    \"generated\": " << res.generated << ",\n";
    os << "    \"horizon_cycles\": " << res.horizon << ",\n";
    os << "    \"end_cycles\": " << res.endClock << ",\n";
    os << "    \"epochs\": " << res.epochs << ",\n";
    os << "    \"metrics\":\n";
    os << (res.fleet ? metrics::toJson(*res.fleet, "    ")
                     : std::string("    null"));
    os << "\n  },\n";
    os << "  \"shards\": [\n";
    for (std::size_t k = 0; k < res.shards.size(); ++k) {
        const ShardSummary &s = res.shards[k];
        os << "    {\n";
        os << "      \"id\": " << k << ",\n";
        os << "      \"arrived\": " << s.arrived << ",\n";
        os << "      \"completed\": " << s.completed << ",\n";
        os << "      \"shed\": " << s.shed << ",\n";
        os << "      \"slow_completed\": " << s.slowCompleted
           << ",\n";
        os << "      \"queue_hwm\": " << s.queueHwm << ",\n";
        os << "      \"end_cycles\": " << s.endClock << ",\n";
        os << "      \"metrics\":\n";
        const auto &reg = res.shardMetrics[k];
        os << (reg ? metrics::toJson(*reg, "      ")
                   : std::string("      null"));
        os << "\n    }" << (k + 1 < res.shards.size() ? "," : "")
           << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

} // namespace serve
} // namespace terp
