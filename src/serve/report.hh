/**
 * @file
 * Rendering of the fleet's exposure/latency posture.
 *
 * The report is the serve golden: every number derives from
 * simulated state (cycle counts, seeded randomness, commutative
 * metric merges), never from host timing, so the text is
 * byte-identical for a fixed (seed, shards) across any host worker
 * count, platform, or run. Host wall time goes to the JSON export
 * only.
 */

#ifndef TERP_SERVE_REPORT_HH
#define TERP_SERVE_REPORT_HH

#include <string>

#include "serve/server.hh"

namespace terp {
namespace serve {

/** The human/golden posture report. */
std::string postureReport(const FleetResult &res);

/**
 * JSON document for tooling: config, fleet summary, per-shard
 * summaries, and the full metrics registries (fleet + per shard)
 * in the BENCH_terp.json "metrics" layout. Host wall time included
 * (callers comparing output byte-for-byte use the report instead).
 */
std::string toJson(const FleetResult &res, unsigned hostWorkers);

} // namespace serve
} // namespace terp

#endif // TERP_SERVE_REPORT_HH
