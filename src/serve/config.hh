/**
 * @file
 * Configuration of terp-serve: a long-lived multi-tenant PMO server.
 *
 * The batch harnesses (bench/, tools/terp-bench) answer "what does
 * one run of workload W cost under scheme S?". terp-serve asks the
 * operational question instead: a persistent server owns a fleet of
 * PMOs partitioned into shards and serves an open-loop stream of
 * attach/access/detach transactions from thousands of simulated
 * client sessions. What does the *exposure posture* of that fleet
 * look like — EW/TEW tails, SLO violations, request tail latency —
 * when tenant popularity is Zipfian, arrivals are bursty, and some
 * clients are slow enough to hold their attach windows past the
 * sweeper horizon?
 *
 * Everything here is expressed in simulated cycles and seeded
 * randomness: a (seed, shards) pair fully determines the transaction
 * stream, the per-shard interleaving and the final metrics
 * aggregate, independent of how many *host* worker threads execute
 * the shards (see server.hh for the determinism argument).
 */

#ifndef TERP_SERVE_CONFIG_HH
#define TERP_SERVE_CONFIG_HH

#include <cstdint>

#include "common/units.hh"
#include "core/config.hh"
#include "sim/machine.hh"

namespace terp {
namespace serve {

/** Full terp-serve fleet configuration. */
struct ServeConfig
{
    /** Master seed: every stream in the run derives from it. */
    std::uint64_t seed = 1;

    /** Number of shards (independent runtime domains). */
    unsigned shards = 2;
    /** Simulated server worker threads per shard. */
    unsigned workersPerShard = 4;
    /** Tenant PMOs per shard. */
    unsigned pmosPerShard = 8;
    /** Size of each tenant PMO. */
    std::uint64_t pmoSize = 4 * MiB;

    /** Simulated client sessions (each is an open-loop stream). */
    unsigned sessions = 200;
    /** Requests issued per session. */
    unsigned requestsPerSession = 16;

    /**
     * Zipfian skew of tenant popularity over the fleet's PMOs
     * (0 = uniform, 0.99 = YCSB default). Hot tenants are spread
     * round-robin across shards (global pmo g lives on shard
     * g % shards), so skew concentrates load within shards, not on
     * one shard.
     */
    double zipfTheta = 0.99;

    /**
     * Bursty on/off arrivals: within a burst, successive requests of
     * a session are separated by an exponential think time with this
     * mean; with probability offProb the session instead goes quiet
     * for an exponential off-gap with mean offMean (Poisson-ish
     * bursts riding on a heavy-tailed envelope).
     */
    Cycles thinkMean = 8 * cyclesPerUs;
    Cycles offMean = 200 * cyclesPerUs;
    double offProb = 0.1;

    /** Ops per request and bytes touched per op. */
    unsigned opsPerRequest = 6;
    std::uint64_t bytesPerOp = 256;
    /** Pure compute instructions between ops (jittered ±50%). */
    std::uint64_t instrPerOp = 400;

    /**
     * Fraction of sessions that are *slow clients*: every one of
     * their requests holds the protection region open for slowHold
     * extra cycles after its last access — deliberately past the
     * sweeper horizon, so the run exercises forced detaches /
     * delayed-detach handling and trips the TEW SLO.
     */
    double slowFraction = 0.02;
    Cycles slowHold = 3 * target::defaultEw;

    /**
     * Bounded per-shard request queue. An arrival that finds the
     * queue full is shed — counted and traced, never silently
     * dropped (satellite: backpressure must be observable).
     */
    unsigned queueCapacity = 64;

    /**
     * Fleet epoch length: shards advance their simulated clocks in
     * lockstep epochs (the only cross-shard coordination besides the
     * final metrics merge). Purely a host-side pacing construct —
     * per-shard results are independent of the epoch length.
     */
    Cycles epoch = 100 * cyclesPerUs;

    /**
     * Exposure SLOs judged per closed window (see
     * RuntimeConfig::ewSlo). Defaults: EW violated when a window
     * outlives 2x the sweeper target (the sweeper should close
     * everything within target + one period); TEW violated well
     * past the insertion target — an ordinary request holds thread
     * permission for a few microseconds of accesses, so only
     * queue-tail requests and slow clients should alert.
     */
    Cycles ewSlo = 2 * target::defaultEw;
    Cycles tewSlo = 10 * target::defaultTew;

    /**
     * Per-tenant exposure budget for SLO burn-rate alerting: the
     * fraction of wall-clock each tenant PMO is *allowed* to sit
     * exposed (mapped). 0 disables budgets, burn gauges and the
     * shed-advice hook entirely — attribution stays on, alerting is
     * opt-in, and the default posture report is unchanged.
     */
    double tenantEwBudget = 0.0;
    /**
     * Fast/slow burn-rate windows (tumbling, aligned to t=0),
     * following the classic multi-window burn-rate alerting recipe:
     * the fast window catches short bursts quickly, the slow window
     * confirms sustained burn. For each closed exposure window the
     * tenant's bucket sums advance and
     *   burn = (exposed cycles in window / window) / tenantEwBudget
     * is published as serve.slo_burn{tenant=...,win="fast"|"slow"}
     * gauges (the gauge high-water mark keeps the peak). A tenant
     * whose fast AND slow burn both exceed 1.0 is in alert: admits
     * for it bump serve.shed_advised — advisory only, nothing is
     * actually shed (the decision hook is a stub by design).
     */
    Cycles burnFast = 50 * cyclesPerUs;
    Cycles burnSlow = 400 * cyclesPerUs;

    /** Protection scheme + machine model of every shard. */
    core::RuntimeConfig runtime = core::RuntimeConfig::tt();
    sim::MachineConfig machine;

    /** Attach a persistence domain (undo logs) to each shard. */
    bool persistence = false;

    /**
     * Transactional writes per request: when nonzero (and
     * persistence is on), every request ends with one multi-op
     * TxManager transaction on its tenant PMO — this many 8-byte
     * writes committed as a single durable point, alternating
     * seeded between the undo and redo log variants. A request
     * whose begin loses the per-PMO lock race to a concurrent
     * worker skips its transaction; the rejection is observable as
     * pm.txn_busy in the merged metrics.
     */
    unsigned txnWrites = 0;

    /** Total tenant PMOs across the fleet. */
    std::uint64_t
    totalPmos() const
    {
        return static_cast<std::uint64_t>(shards) * pmosPerShard;
    }

    /** Small, fast configuration for tests and CI smoke runs. */
    static ServeConfig quick();
};

} // namespace serve
} // namespace terp

#endif // TERP_SERVE_CONFIG_HH
