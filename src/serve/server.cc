#include "serve/server.hh"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>

#include "common/logging.hh"

namespace terp {
namespace serve {

namespace {

/**
 * Bounded work queue + fixed worker pool with promise-based
 * completion. submit() blocks while the queue is at capacity
 * (backpressure on the coordinator, never unbounded growth) and
 * returns a future the caller joins on.
 */
class HostPool
{
  public:
    HostPool(unsigned workers, std::size_t capacity)
        : cap(capacity ? capacity : 1)
    {
        if (workers == 0)
            workers = 1;
        for (unsigned i = 0; i < workers; ++i)
            pool.emplace_back([this] { drain(); });
    }

    ~HostPool()
    {
        {
            std::lock_guard<std::mutex> lk(mu);
            stopping = true;
        }
        workAvailable.notify_all();
        for (auto &t : pool)
            t.join();
    }

    std::future<void>
    submit(std::function<void()> fn)
    {
        auto p = std::make_shared<std::promise<void>>();
        std::future<void> f = p->get_future();
        {
            std::unique_lock<std::mutex> lk(mu);
            spaceAvailable.wait(
                lk, [this] { return tasks.size() < cap; });
            tasks.push_back({std::move(fn), std::move(p)});
        }
        workAvailable.notify_one();
        return f;
    }

  private:
    struct Task
    {
        std::function<void()> fn;
        std::shared_ptr<std::promise<void>> done;
    };

    void
    drain()
    {
        for (;;) {
            Task t;
            {
                std::unique_lock<std::mutex> lk(mu);
                workAvailable.wait(lk, [this] {
                    return stopping || !tasks.empty();
                });
                if (tasks.empty())
                    return; // stopping and drained
                t = std::move(tasks.front());
                tasks.pop_front();
            }
            spaceAvailable.notify_one();
            try {
                t.fn();
                t.done->set_value();
            } catch (...) {
                t.done->set_exception(std::current_exception());
            }
        }
    }

    std::mutex mu;
    std::condition_variable workAvailable;
    std::condition_variable spaceAvailable;
    std::deque<Task> tasks;
    std::vector<std::thread> pool;
    std::size_t cap;
    bool stopping = false;
};

/**
 * The bench aggregate's rule — keep only fleet-meaningful series —
 * plus: drop host.* instrumentation (wall-clock timings of the
 * simulator itself), which is the one family that would break the
 * fleet export's any-host-worker-count byte-identity.
 */
bool
keepInFleet(const std::string &name)
{
    if (name.rfind("host.", 0) == 0)
        return false;
    return name.find("{pmo=\"") == std::string::npos ||
           name.find("{pmo=\"all\"") != std::string::npos;
}

} // namespace

FleetResult
runFleet(const ServeConfig &cfg, unsigned hostWorkers)
{
    TERP_ASSERT(cfg.shards > 0, "runFleet: zero shards");
    TERP_ASSERT(cfg.epoch > 0, "runFleet: zero epoch");
    auto wallStart = std::chrono::steady_clock::now();

    LoadGen load(cfg);
    std::vector<std::unique_ptr<ServeShard>> shards;
    for (unsigned k = 0; k < cfg.shards; ++k)
        shards.push_back(std::make_unique<ServeShard>(
            cfg, k, load.shardStream(k)));

    FleetResult res;
    res.cfg = cfg;
    res.generated = load.totalRequests();
    res.slowSessions = load.slowSessions();
    res.horizon = load.horizon();

    {
        HostPool pool(hostWorkers, 2 * cfg.shards);
        // Plain bytes, not vector<bool>: each shard's task writes
        // its own slot from a pool thread.
        std::vector<char> done(cfg.shards, 0);
        Cycles epochEnd = cfg.epoch;
        for (;;) {
            bool all = true;
            std::vector<std::future<void>> joins;
            for (unsigned k = 0; k < cfg.shards; ++k) {
                if (done[k])
                    continue;
                all = false;
                ServeShard *s = shards[k].get();
                // done[k] is only written by this task and only
                // read after the barrier; shards never share state.
                char *slot = &done[k];
                joins.push_back(pool.submit([s, epochEnd, slot] {
                    if (s->processUntil(epochEnd))
                        *slot = 1;
                }));
            }
            if (all)
                break;
            for (auto &j : joins)
                j.get(); // epoch barrier = the fleet clock
            ++res.epochs;
            epochEnd += cfg.epoch;
        }

        // Drain + finalize, still parallel across shards.
        std::vector<std::future<void>> joins;
        for (auto &s : shards)
            joins.push_back(
                pool.submit([sp = s.get()] { sp->finish(); }));
        for (auto &j : joins)
            j.get();
    }

    // Fleet aggregation on the coordinating thread, in shard-id
    // order (merge is commutative, so the order is cosmetic — but
    // fixing it makes the run bit-reproducible by inspection).
    res.fleet = std::make_shared<metrics::Registry>();
    res.fleet->setLabel("scheme",
                        core::schemeTag(cfg.runtime));
    res.fleet->setLabel("shard", "fleet");
    for (auto &s : shards) {
        res.shards.push_back(s->summary());
        if (s->summary().endClock > res.endClock)
            res.endClock = s->summary().endClock;
        auto reg = s->domain().runtime().metricsRegistry();
        res.shardMetrics.push_back(reg);
        if (reg)
            res.fleet->merge(*reg, keepInFleet);
    }

    res.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wallStart)
            .count();
    return res;
}

} // namespace serve
} // namespace terp
