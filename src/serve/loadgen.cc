#include "serve/loadgen.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace terp {
namespace serve {

namespace {

/** SplitMix64 finalizer: decorrelate derived per-session seeds. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Exponential inter-arrival with the given mean, quantized to whole
 * cycles and floored at 1 so time always advances. Uses -mean*ln(u)
 * on a (0,1] uniform.
 */
Cycles
exponential(Rng &rng, Cycles mean)
{
    double u = 1.0 - rng.nextDouble(); // (0, 1]
    double v = -static_cast<double>(mean) * std::log(u);
    auto c = static_cast<Cycles>(v);
    return c > 0 ? c : 1;
}

} // namespace

LoadGen::LoadGen(const ServeConfig &cfg)
    : streams(cfg.shards)
{
    TERP_ASSERT(cfg.shards > 0, "LoadGen: zero shards");
    TERP_ASSERT(cfg.totalPmos() > 0, "LoadGen: zero PMOs");

    for (std::uint32_t s = 0; s < cfg.sessions; ++s) {
        // One derived stream per session: the schedule of session s
        // never depends on how many other sessions exist.
        Rng rng(mix64(cfg.seed ^ mix64(s + 1)));
        ZipfGenerator zipf(cfg.totalPmos(), cfg.zipfTheta, rng.next());
        bool slow = rng.nextBool(cfg.slowFraction);
        if (slow)
            ++nSlow;

        // Sessions don't all arrive at once: stagger the first
        // request by one off-gap so the ramp-up is itself bursty.
        Cycles t = exponential(rng, cfg.offMean);
        for (std::uint32_t r = 0; r < cfg.requestsPerSession; ++r) {
            Request req;
            req.arrival = t;
            req.session = s;
            req.seq = r;
            req.globalPmo =
                static_cast<pm::PmoId>(zipf.next());
            req.ops = static_cast<std::uint16_t>(
                1 + rng.nextBelow(2 * cfg.opsPerRequest));
            req.slow = slow;
            req.salt = rng.next();

            streams[req.globalPmo % cfg.shards].push_back(req);
            ++total;
            if (t > lastArrival)
                lastArrival = t;

            t += exponential(rng, cfg.thinkMean);
            if (rng.nextBool(cfg.offProb))
                t += exponential(rng, cfg.offMean);
        }
    }

    // The shard executes its stream in this total order; the
    // (session, seq) tie-break makes it independent of the
    // generation loop's session iteration order.
    for (auto &stream : streams)
        std::sort(stream.begin(), stream.end(),
                  [](const Request &a, const Request &b) {
                      if (a.arrival != b.arrival)
                          return a.arrival < b.arrival;
                      if (a.session != b.session)
                          return a.session < b.session;
                      return a.seq < b.seq;
                  });
}

} // namespace serve
} // namespace terp
