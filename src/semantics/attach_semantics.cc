#include "semantics/attach_semantics.hh"

#include "common/logging.hh"

namespace terp {
namespace semantics {

const char *
semanticsName(SemanticsKind k)
{
    switch (k) {
      case SemanticsKind::Basic: return "Basic";
      case SemanticsKind::Outermost: return "Outermost";
      case SemanticsKind::Fcfs: return "FCFS";
      case SemanticsKind::EwConscious: return "EW-Conscious";
      default: return "?";
    }
}

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Performed: return "performed";
      case Verdict::Silent: return "silent";
      case Verdict::Reattach: return "reattach";
      case Verdict::Valid: return "valid";
      case Verdict::Invalid: return "invalid";
      case Verdict::Undefined: return "undefined";
      case Verdict::SegFault: return "segfault";
      default: return "?";
    }
}

std::unique_ptr<AttachSemantics>
AttachSemantics::make(SemanticsKind k, Cycles ew_limit)
{
    switch (k) {
      case SemanticsKind::Basic:
        return std::make_unique<BasicSemantics>();
      case SemanticsKind::Outermost:
        return std::make_unique<OutermostSemantics>();
      case SemanticsKind::Fcfs:
        return std::make_unique<FcfsSemantics>();
      case SemanticsKind::EwConscious:
        return std::make_unique<EwConsciousSemantics>(ew_limit);
    }
    TERP_PANIC("unknown semantics kind");
}

// ---------------------------------------------------------------- Basic

Verdict
BasicSemantics::onAttach(unsigned, pm::PmoId pmo, Cycles, pm::Mode)
{
    auto &s = st[pmo];
    if (s.poisoned)
        return Verdict::Undefined;
    if (s.attached) {
        // An attach must be followed by a detach, not another attach.
        s.poisoned = true;
        return Verdict::Invalid;
    }
    s.attached = true;
    return Verdict::Performed;
}

Verdict
BasicSemantics::onDetach(unsigned, pm::PmoId pmo, Cycles)
{
    auto &s = st[pmo];
    if (s.poisoned)
        return Verdict::Undefined;
    if (!s.attached) {
        s.poisoned = true;
        return Verdict::Invalid;
    }
    s.attached = false;
    return Verdict::Performed;
}

Verdict
BasicSemantics::onAccess(unsigned, pm::PmoId pmo, Cycles, bool)
{
    auto &s = st[pmo];
    if (s.poisoned)
        return Verdict::Undefined;
    return s.attached ? Verdict::Valid : Verdict::Invalid;
}

bool
BasicSemantics::mapped(pm::PmoId pmo) const
{
    auto it = st.find(pmo);
    return it != st.end() && it->second.attached &&
           !it->second.poisoned;
}

// ------------------------------------------------------------ Outermost

Verdict
OutermostSemantics::onAttach(unsigned, pm::PmoId pmo, Cycles,
                             pm::Mode)
{
    int &d = depth[pmo];
    ++d;
    return d == 1 ? Verdict::Performed : Verdict::Silent;
}

Verdict
OutermostSemantics::onDetach(unsigned, pm::PmoId pmo, Cycles)
{
    int &d = depth[pmo];
    if (d <= 0)
        return Verdict::Invalid;
    --d;
    return d == 0 ? Verdict::Performed : Verdict::Silent;
}

Verdict
OutermostSemantics::onAccess(unsigned, pm::PmoId pmo, Cycles, bool)
{
    auto it = depth.find(pmo);
    return (it != depth.end() && it->second > 0) ? Verdict::Valid
                                                 : Verdict::SegFault;
}

bool
OutermostSemantics::mapped(pm::PmoId pmo) const
{
    auto it = depth.find(pmo);
    return it != depth.end() && it->second > 0;
}

// ----------------------------------------------------------------- FCFS

Verdict
FcfsSemantics::onAttach(unsigned, pm::PmoId pmo, Cycles, pm::Mode)
{
    auto &s = st[pmo];
    ++s.depth;
    if (!s.attached) {
        s.attached = true;
        return s.depth == 1 ? Verdict::Performed : Verdict::Reattach;
    }
    return Verdict::Silent;
}

Verdict
FcfsSemantics::onDetach(unsigned, pm::PmoId pmo, Cycles)
{
    auto &s = st[pmo];
    if (s.depth <= 0)
        return Verdict::Invalid;
    --s.depth;
    if (s.attached) {
        // First detach encountered after an attach is performed.
        s.attached = false;
        return Verdict::Performed;
    }
    return Verdict::Silent;
}

Verdict
FcfsSemantics::onAccess(unsigned, pm::PmoId pmo, Cycles, bool)
{
    auto &s = st[pmo];
    if (s.attached)
        return Verdict::Valid;
    if (s.depth > 0) {
        // Inside the outermost pair but after a performed detach:
        // the access triggers an automatic re-attach.
        s.attached = true;
        return Verdict::Reattach;
    }
    return Verdict::SegFault;
}

bool
FcfsSemantics::mapped(pm::PmoId pmo) const
{
    auto it = st.find(pmo);
    return it != st.end() && it->second.attached;
}

// --------------------------------------------------------- EW-Conscious

Verdict
EwConsciousSemantics::onAttach(unsigned tid, pm::PmoId pmo, Cycles t,
                               pm::Mode mode)
{
    auto &s = st[pmo];
    if (s.holders.count(tid)) {
        // No overlap of pairs within a thread.
        return Verdict::Invalid;
    }
    s.holders[tid] = mode;
    if (!s.attached) {
        s.attached = true;
        s.lastRealAttach = t;
        return Verdict::Performed;
    }
    // Lowered to a thread-level permission grant.
    return Verdict::Silent;
}

Verdict
EwConsciousSemantics::onDetach(unsigned tid, pm::PmoId pmo, Cycles t)
{
    auto &s = st[pmo];
    auto it = s.holders.find(tid);
    if (it == s.holders.end())
        return Verdict::Invalid; // detach without matching attach
    s.holders.erase(it);
    // Real detach once the window target is met or exceeded (Fig 7c's
    // CurTime - TS >= maxEW); written addition-side so a detach by a
    // thread whose local clock is behind the attacher's cannot
    // underflow.
    bool span_exceeded = t >= s.lastRealAttach + limit;
    if (span_exceeded && s.holders.empty()) {
        s.attached = false;
        return Verdict::Performed;
    }
    // Lowered to a thread-level permission revoke.
    return Verdict::Silent;
}

Verdict
EwConsciousSemantics::onAccess(unsigned tid, pm::PmoId pmo, Cycles,
                               bool write)
{
    auto it = st.find(pmo);
    if (it == st.end() || !it->second.attached)
        return Verdict::SegFault;
    // Access requires the calling thread's permission to be open and
    // to include the requested right (Fig 4: st after attach(R) is
    // denied).
    auto h = it->second.holders.find(tid);
    if (h == it->second.holders.end())
        return Verdict::Invalid;
    return pm::modeAllows(h->second, write) ? Verdict::Valid
                                            : Verdict::Invalid;
}

bool
EwConsciousSemantics::mapped(pm::PmoId pmo) const
{
    auto it = st.find(pmo);
    return it != st.end() && it->second.attached;
}

std::size_t
EwConsciousSemantics::permHolders(pm::PmoId pmo) const
{
    auto it = st.find(pmo);
    return it == st.end() ? 0 : it->second.holders.size();
}

std::vector<SweepOutcome>
EwConsciousSemantics::onSweep(Cycles t)
{
    std::vector<SweepOutcome> out;
    for (auto &[pmo, s] : st) {
        if (!s.attached || t < s.lastRealAttach + limit)
            continue;
        if (s.holders.empty()) {
            s.attached = false;
            out.push_back({pmo, true});
        } else {
            // Forced re-randomization: the location dies, the
            // mapping survives, and a fresh window opens.
            s.lastRealAttach = t;
            out.push_back({pmo, false});
        }
    }
    return out;
}

} // namespace semantics
} // namespace terp
