/**
 * @file
 * Exposure-window bookkeeping (Definition 5 of the paper).
 *
 * Tracks, per PMO, the process-level exposure windows (EW: the PMO is
 * mapped in the address space) and per-thread exposure windows (TEW:
 * a specific thread holds access permission), and derives the
 * metrics the evaluation tables report:
 *   EW avg/max, ER = sum(EW)/total time,
 *   TEW avg,    TER = sum(TEW)/(total time * threads).
 */

#ifndef TERP_SEMANTICS_EW_TRACKER_HH
#define TERP_SEMANTICS_EW_TRACKER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "metrics/registry.hh"
#include "pm/oid.hh"

namespace terp {
namespace semantics {

/**
 * Why an exposure window was open during a span of cycles. Every
 * closed window decomposes into blame segments whose lengths sum
 * bit-exactly to the window's EW contribution; the taxonomy is the
 * provenance layer's contract with the report/alerting side.
 */
enum class BlameCause : std::uint8_t
{
    AppHold,        //!< a thread (or manual/basic span) held it open
    SweeperLag,     //!< idle past the EW deadline, sweeper hasn't acted
    QueueWait,      //!< serve: open while requests queued for its tenant
    SlowClientHold, //!< serve: a slow client sat inside its window
    RecoveryReopen, //!< window reopened by the post-crash recovery pass
    TxnLockWait,    //!< held up by transaction lock contention
    EnergyDark,     //!< energy harvesting: sweeper gated off (dark/brownout)
    NumCauses,
};

constexpr unsigned numBlameCauses =
    static_cast<unsigned>(BlameCause::NumCauses);

/** Stable snake_case name (metric label value / trace decoding). */
const char *blameCauseName(BlameCause c);

/** Aggregated exposure metrics for one PMO (or averaged over all). */
struct ExposureMetrics
{
    double ewAvgUs = 0;   //!< mean exposure-window length
    double ewMaxUs = 0;   //!< max exposure-window length
    double er = 0;        //!< exposure rate (fraction of time mapped)
    double tewAvgUs = 0;  //!< mean thread exposure window
    double tewMaxUs = 0;  //!< max thread exposure window
    double ter = 0;       //!< thread exposure rate
    std::uint64_t ewCount = 0;
    std::uint64_t tewCount = 0;
};

/** Records open/close events and summarizes exposure windows. */
class EwTracker
{
  public:
    /** The PMO became mapped (real attach) at time @p t. */
    void processOpen(pm::PmoId pmo, Cycles t);

    /** The PMO became unmapped (real detach) at time @p t. */
    void processClose(pm::PmoId pmo, Cycles t);

    /** Thread @p tid gained access permission at time @p t. */
    void threadOpen(unsigned tid, pm::PmoId pmo, Cycles t);

    /** Thread @p tid lost access permission at time @p t. */
    void threadClose(unsigned tid, pm::PmoId pmo, Cycles t);

    /** Close any windows still open at the end of the run. */
    void finalize(Cycles t_end);

    /** True if the PMO is currently in an open process window. */
    bool processWindowOpen(pm::PmoId pmo) const;

    /**
     * Open time of the current process window (requires one open).
     * A crash can find a window the free-running sweeper reopened at
     * a wall-clock instant beyond every thread clock; closing such a
     * window at the crash instant would rewind time, so the crash
     * path clamps its close to this.
     */
    Cycles processOpenSince(pm::PmoId pmo) const;

    /** Open time of tid's current thread window (requires open). */
    Cycles threadOpenSince(unsigned tid, pm::PmoId pmo) const;

    /** Metrics for a single PMO. */
    ExposureMetrics metricsFor(pm::PmoId pmo, Cycles total,
                               unsigned threads) const;

    /** Metrics averaged over every PMO that had any window. */
    ExposureMetrics metricsAll(Cycles total, unsigned threads) const;

    /** PMOs seen by the tracker. */
    std::vector<pm::PmoId> pmosSeen() const;

    /**
     * Raw closed-window summaries, in cycles, for exact differential
     * comparison (the trace auditor cross-checks these). Null if the
     * PMO was never seen.
     */
    const Summary *ewSummaryFor(pm::PmoId pmo) const;
    const Summary *tewSummaryFor(pm::PmoId pmo) const;

    /**
     * Publish every closed window into @p r as log-bucketed length
     * histograms: `exposure.ew_cycles{pmo="N"}` /
     * `exposure.tew_cycles{pmo="N"}` per PMO plus a `pmo="all"`
     * aggregate. The histograms' exact count/sum/min/max equal the
     * per-PMO Summaries cycle-for-cycle (only quantiles are
     * approximate), which is what lets terp-stats and the metrics
     * cross-check test validate the registry against this tracker.
     * Pass null to detach. Windows closed before the call are not
     * backfilled, so enable before the first event.
     */
    void enableMetrics(metrics::Registry *r) { reg = r; }

    /**
     * Exposure SLOs: count every closed window longer than the
     * threshold (0 disables that class). Violations are counted per
     * tracker — i.e. per shard domain — and, when metrics are
     * enabled, published as `exposure.slo_violations{win="ew"}` and
     * `{win="tew"}`; the serve layer's slow-client scenario is what
     * exercises the TEW counter past the sweeper horizon.
     */
    void
    setSlo(Cycles ew_slo, Cycles tew_slo)
    {
        sloEw = ew_slo;
        sloTew = tew_slo;
    }

    /** Closed process windows that exceeded the EW SLO. */
    std::uint64_t sloEwViolations() const { return ewViolations; }
    /** Closed thread windows that exceeded the TEW SLO. */
    std::uint64_t sloTewViolations() const { return tewViolations; }

    // ---- exposure provenance (blame) ---------------------------------
    //
    // Every open process window carries a cause segmentation: a list
    // of resolved [start, end) spans, each attributed to one
    // BlameCause. Cause-relevant state changes (thread grants and
    // revokes, hold/idle overrides, dark periods) flush the span up
    // to the event time; processClose resolves the tail, *truncates*
    // the list to the close time (per-thread clocks are not globally
    // monotone, so an earlier flush can extend past a sweeper's
    // close), and asserts that the segments tile the window exactly.
    // The bookkeeping is charge-free: it never touches thread clocks
    // and is always on, so enabling metrics cannot perturb results.

    /**
     * Idle windows older than openSince + target are blamed on
     * SweeperLag (the sweeper should have closed them). Set to the
     * scheme's ewTarget; 0 disables the deadline split.
     */
    void setBlameTarget(Cycles target) { blameTarget = target; }

    /**
     * Mark/unmark an exclusive span (manualBegin/manualEnd, basic
     * regions) that holds the window open without a thread-permission
     * grant, so blame sees it as held rather than idle.
     */
    void setExternalHold(pm::PmoId pmo, bool on, Cycles t);

    /**
     * Override the cause while the window is held (SlowClientHold,
     * TxnLockWait). Applies whether or not a thread window is open.
     */
    void setHoldCause(pm::PmoId pmo, BlameCause c, Cycles t);
    void clearHoldCause(pm::PmoId pmo, Cycles t);

    /** Override the cause while the window is idle (QueueWait). */
    void setIdleCause(pm::PmoId pmo, BlameCause c, Cycles t);
    void clearIdleCause(pm::PmoId pmo, Cycles t);

    /**
     * Sweeper gated off for energy (dark period / brownout): idle
     * spans are EnergyDark, not SweeperLag — the sweeper *couldn't*
     * act. Flushes every open window at @p t.
     */
    void setEnergyDark(bool on, Cycles t);

    /**
     * While set, newly opened windows blame their idle base on
     * RecoveryReopen instead of AppHold (the recovery pass reopened
     * them; the spill past the deadline is still SweeperLag).
     */
    void setRecoveryActive(bool on) { recovering = on; }

    /**
     * Drop per-PMO transient cause state (external holds, overrides)
     * — the crash path's reset; windows must already be closed.
     */
    void resetTransientCauses();

    /** Label the PMO's tenant for per-tenant blame counters. */
    void setTenant(pm::PmoId pmo, const std::string &tenant);

    /**
     * Per-close segment hook, fired once per final (truncated)
     * segment in window order: (pmo, segment end, cause). The
     * runtime wires this to BlameSegment trace events so the audit
     * can recompute the attribution independently.
     */
    using SegmentHook =
        std::function<void(pm::PmoId, Cycles, BlameCause)>;
    void setSegmentHook(SegmentHook h) { segHook = std::move(h); }

    /**
     * Per-close window hook: (pmo, close time, window length). The
     * serve layer uses it to feed per-tenant SLO burn-rate windows.
     */
    using CloseHook = std::function<void(pm::PmoId, Cycles, Cycles)>;
    void setCloseHook(CloseHook h) { closeHook = std::move(h); }

    /** Total cycles blamed on @p c for @p pmo (closed windows). */
    Cycles blameTotal(pm::PmoId pmo, BlameCause c) const;
    /** Total cycles blamed on @p c across every PMO. */
    Cycles blameTotalAll(BlameCause c) const;

  private:
    /** Sentinel for "thread window not open". */
    static constexpr Cycles notOpen = ~Cycles(0);

    /** One resolved blame span; its start is the previous end. */
    struct BlameSeg
    {
        Cycles end;
        BlameCause cause;
    };

    /** Sentinel for "no cause override installed". */
    static constexpr std::uint8_t noCause = 0xFF;

    struct PerPmo
    {
        Summary ew;                        //!< closed process windows
        Summary tew;                       //!< closed thread windows
        Cycles openSince = 0;
        bool open = false;
        bool seen = false; //!< any event ever recorded for this PMO
        /** Open-since time per tid; notOpen when closed. */
        std::vector<Cycles> threadOpenSince;

        // -- blame state for the current window --
        /** Resolved segments; seg[0] starts at openSince. */
        std::vector<BlameSeg> segs;
        /** Start of the not-yet-resolved tail span. */
        Cycles causeSince = 0;
        /** Idle base cause: AppHold, or RecoveryReopen. */
        BlameCause idleBase = BlameCause::AppHold;
        /** Held by a manual/basic span (no thread grant visible). */
        bool externalHold = false;
        std::uint8_t holdCause = noCause; //!< BlameCause or noCause
        std::uint8_t idleCause = noCause; //!< BlameCause or noCause
        /** Closed-window blame totals, indexed by BlameCause. */
        Cycles blame[numBlameCauses] = {};
    };

    /** Dense per-PMO state (PmoIds are small sequential ints). */
    PerPmo &state(pm::PmoId pmo);
    const PerPmo *stateIfSeen(pm::PmoId pmo) const;

    /** Funnels for window closes: Summary + registry histograms. */
    void recordEw(PerPmo &s, pm::PmoId pmo, Cycles len);
    void recordTew(PerPmo &s, pm::PmoId pmo, Cycles len);

    /** True if any thread window or external span holds @p s open. */
    static bool heldForBlame(const PerPmo &s);
    /** Resolve [causeSince, t) and advance causeSince (open only). */
    void flushBlame(PerPmo &s, Cycles t);
    /** Append [causeSince, t) as @p c, coalescing equal neighbors. */
    static void appendSeg(PerPmo &s, Cycles t, BlameCause c);
    /**
     * Close the blame side of a window at @p t: resolve the tail,
     * truncate the segment list to @p t, assert the segments tile
     * [openSince, t) exactly, accumulate totals, publish metrics and
     * fire hooks.
     */
    void closeBlame(PerPmo &s, pm::PmoId pmo, Cycles t);

    std::vector<PerPmo> perPmo; //!< indexed by PmoId; .seen gates use
    metrics::Registry *reg = nullptr; //!< null = no metrics
    Cycles sloEw = 0;   //!< EW SLO threshold; 0 = off
    Cycles sloTew = 0;  //!< TEW SLO threshold; 0 = off
    std::uint64_t ewViolations = 0;
    std::uint64_t tewViolations = 0;

    Cycles blameTarget = 0; //!< idle deadline offset; 0 = no split
    bool dark = false;      //!< sweeper energy-gated right now
    bool recovering = false; //!< inside the recovery pass
    std::vector<std::string> tenantOf; //!< per-PMO tenant label
    SegmentHook segHook;
    CloseHook closeHook;
};

} // namespace semantics
} // namespace terp

#endif // TERP_SEMANTICS_EW_TRACKER_HH
