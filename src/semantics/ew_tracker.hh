/**
 * @file
 * Exposure-window bookkeeping (Definition 5 of the paper).
 *
 * Tracks, per PMO, the process-level exposure windows (EW: the PMO is
 * mapped in the address space) and per-thread exposure windows (TEW:
 * a specific thread holds access permission), and derives the
 * metrics the evaluation tables report:
 *   EW avg/max, ER = sum(EW)/total time,
 *   TEW avg,    TER = sum(TEW)/(total time * threads).
 */

#ifndef TERP_SEMANTICS_EW_TRACKER_HH
#define TERP_SEMANTICS_EW_TRACKER_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "metrics/registry.hh"
#include "pm/oid.hh"

namespace terp {
namespace semantics {

/** Aggregated exposure metrics for one PMO (or averaged over all). */
struct ExposureMetrics
{
    double ewAvgUs = 0;   //!< mean exposure-window length
    double ewMaxUs = 0;   //!< max exposure-window length
    double er = 0;        //!< exposure rate (fraction of time mapped)
    double tewAvgUs = 0;  //!< mean thread exposure window
    double tewMaxUs = 0;  //!< max thread exposure window
    double ter = 0;       //!< thread exposure rate
    std::uint64_t ewCount = 0;
    std::uint64_t tewCount = 0;
};

/** Records open/close events and summarizes exposure windows. */
class EwTracker
{
  public:
    /** The PMO became mapped (real attach) at time @p t. */
    void processOpen(pm::PmoId pmo, Cycles t);

    /** The PMO became unmapped (real detach) at time @p t. */
    void processClose(pm::PmoId pmo, Cycles t);

    /** Thread @p tid gained access permission at time @p t. */
    void threadOpen(unsigned tid, pm::PmoId pmo, Cycles t);

    /** Thread @p tid lost access permission at time @p t. */
    void threadClose(unsigned tid, pm::PmoId pmo, Cycles t);

    /** Close any windows still open at the end of the run. */
    void finalize(Cycles t_end);

    /** True if the PMO is currently in an open process window. */
    bool processWindowOpen(pm::PmoId pmo) const;

    /**
     * Open time of the current process window (requires one open).
     * A crash can find a window the free-running sweeper reopened at
     * a wall-clock instant beyond every thread clock; closing such a
     * window at the crash instant would rewind time, so the crash
     * path clamps its close to this.
     */
    Cycles processOpenSince(pm::PmoId pmo) const;

    /** Open time of tid's current thread window (requires open). */
    Cycles threadOpenSince(unsigned tid, pm::PmoId pmo) const;

    /** Metrics for a single PMO. */
    ExposureMetrics metricsFor(pm::PmoId pmo, Cycles total,
                               unsigned threads) const;

    /** Metrics averaged over every PMO that had any window. */
    ExposureMetrics metricsAll(Cycles total, unsigned threads) const;

    /** PMOs seen by the tracker. */
    std::vector<pm::PmoId> pmosSeen() const;

    /**
     * Raw closed-window summaries, in cycles, for exact differential
     * comparison (the trace auditor cross-checks these). Null if the
     * PMO was never seen.
     */
    const Summary *ewSummaryFor(pm::PmoId pmo) const;
    const Summary *tewSummaryFor(pm::PmoId pmo) const;

    /**
     * Publish every closed window into @p r as log-bucketed length
     * histograms: `exposure.ew_cycles{pmo="N"}` /
     * `exposure.tew_cycles{pmo="N"}` per PMO plus a `pmo="all"`
     * aggregate. The histograms' exact count/sum/min/max equal the
     * per-PMO Summaries cycle-for-cycle (only quantiles are
     * approximate), which is what lets terp-stats and the metrics
     * cross-check test validate the registry against this tracker.
     * Pass null to detach. Windows closed before the call are not
     * backfilled, so enable before the first event.
     */
    void enableMetrics(metrics::Registry *r) { reg = r; }

    /**
     * Exposure SLOs: count every closed window longer than the
     * threshold (0 disables that class). Violations are counted per
     * tracker — i.e. per shard domain — and, when metrics are
     * enabled, published as `exposure.slo_violations{win="ew"}` and
     * `{win="tew"}`; the serve layer's slow-client scenario is what
     * exercises the TEW counter past the sweeper horizon.
     */
    void
    setSlo(Cycles ew_slo, Cycles tew_slo)
    {
        sloEw = ew_slo;
        sloTew = tew_slo;
    }

    /** Closed process windows that exceeded the EW SLO. */
    std::uint64_t sloEwViolations() const { return ewViolations; }
    /** Closed thread windows that exceeded the TEW SLO. */
    std::uint64_t sloTewViolations() const { return tewViolations; }

  private:
    /** Sentinel for "thread window not open". */
    static constexpr Cycles notOpen = ~Cycles(0);

    struct PerPmo
    {
        Summary ew;                        //!< closed process windows
        Summary tew;                       //!< closed thread windows
        Cycles openSince = 0;
        bool open = false;
        bool seen = false; //!< any event ever recorded for this PMO
        /** Open-since time per tid; notOpen when closed. */
        std::vector<Cycles> threadOpenSince;
    };

    /** Dense per-PMO state (PmoIds are small sequential ints). */
    PerPmo &state(pm::PmoId pmo);
    const PerPmo *stateIfSeen(pm::PmoId pmo) const;

    /** Funnels for window closes: Summary + registry histograms. */
    void recordEw(PerPmo &s, pm::PmoId pmo, Cycles len);
    void recordTew(PerPmo &s, pm::PmoId pmo, Cycles len);

    std::vector<PerPmo> perPmo; //!< indexed by PmoId; .seen gates use
    metrics::Registry *reg = nullptr; //!< null = no metrics
    Cycles sloEw = 0;   //!< EW SLO threshold; 0 = off
    Cycles sloTew = 0;  //!< TEW SLO threshold; 0 = off
    std::uint64_t ewViolations = 0;
    std::uint64_t tewViolations = 0;
};

} // namespace semantics
} // namespace terp

#endif // TERP_SEMANTICS_EW_TRACKER_HH
