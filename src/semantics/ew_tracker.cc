#include "semantics/ew_tracker.hh"

#include <algorithm>

#include "common/logging.hh"

namespace terp {
namespace semantics {

EwTracker::PerPmo &
EwTracker::state(pm::PmoId pmo)
{
    if (pmo >= perPmo.size())
        perPmo.resize(pmo + 1);
    PerPmo &s = perPmo[pmo];
    s.seen = true;
    return s;
}

const EwTracker::PerPmo *
EwTracker::stateIfSeen(pm::PmoId pmo) const
{
    if (pmo >= perPmo.size() || !perPmo[pmo].seen)
        return nullptr;
    return &perPmo[pmo];
}

void
EwTracker::processOpen(pm::PmoId pmo, Cycles t)
{
    auto &s = state(pmo);
    TERP_ASSERT(!s.open, "double process-open of PMO ", pmo);
    s.open = true;
    s.openSince = t;
}

void
EwTracker::processClose(pm::PmoId pmo, Cycles t)
{
    auto &s = state(pmo);
    TERP_ASSERT(s.open, "process-close of unopened PMO ", pmo);
    TERP_ASSERT(t >= s.openSince, "time went backwards");
    recordEw(s, pmo, t - s.openSince);
    s.open = false;
}

void
EwTracker::threadOpen(unsigned tid, pm::PmoId pmo, Cycles t)
{
    auto &s = state(pmo);
    if (tid >= s.threadOpenSince.size())
        s.threadOpenSince.resize(tid + 1, notOpen);
    TERP_ASSERT(s.threadOpenSince[tid] == notOpen,
                "double thread-open, tid ", tid, " pmo ", pmo);
    s.threadOpenSince[tid] = t;
}

void
EwTracker::threadClose(unsigned tid, pm::PmoId pmo, Cycles t)
{
    auto &s = state(pmo);
    TERP_ASSERT(tid < s.threadOpenSince.size() &&
                    s.threadOpenSince[tid] != notOpen,
                "thread-close without open, tid ", tid);
    TERP_ASSERT(t >= s.threadOpenSince[tid], "time went backwards");
    recordTew(s, pmo, t - s.threadOpenSince[tid]);
    s.threadOpenSince[tid] = notOpen;
}

void
EwTracker::finalize(Cycles t_end)
{
    for (pm::PmoId pmo = 0; pmo < perPmo.size(); ++pmo) {
        PerPmo &s = perPmo[pmo];
        if (!s.seen)
            continue;
        if (s.open) {
            recordEw(s, pmo,
                     t_end >= s.openSince ? t_end - s.openSince : 0);
            s.open = false;
        }
        for (Cycles &since : s.threadOpenSince) {
            if (since == notOpen)
                continue;
            recordTew(s, pmo, t_end >= since ? t_end - since : 0);
            since = notOpen;
        }
    }
}

void
EwTracker::recordEw(PerPmo &s, pm::PmoId pmo, Cycles len)
{
    s.ew.add(len);
    if (sloEw > 0 && len > sloEw) {
        ++ewViolations;
        if (reg)
            reg->counter("exposure.slo_violations{win=\"ew\"}").inc();
    }
    if (reg) {
        reg->histogram(metrics::labeled("exposure.ew_cycles", "pmo",
                                        std::to_string(pmo)))
            .record(len);
        reg->histogram("exposure.ew_cycles{pmo=\"all\"}").record(len);
    }
}

void
EwTracker::recordTew(PerPmo &s, pm::PmoId pmo, Cycles len)
{
    s.tew.add(len);
    if (sloTew > 0 && len > sloTew) {
        ++tewViolations;
        if (reg)
            reg->counter("exposure.slo_violations{win=\"tew\"}").inc();
    }
    if (reg) {
        reg->histogram(metrics::labeled("exposure.tew_cycles", "pmo",
                                        std::to_string(pmo)))
            .record(len);
        reg->histogram("exposure.tew_cycles{pmo=\"all\"}").record(len);
    }
}

bool
EwTracker::processWindowOpen(pm::PmoId pmo) const
{
    const PerPmo *s = stateIfSeen(pmo);
    return s && s->open;
}

Cycles
EwTracker::processOpenSince(pm::PmoId pmo) const
{
    const PerPmo *s = stateIfSeen(pmo);
    TERP_ASSERT(s && s->open, "open-since of unopened PMO ", pmo);
    return s->openSince;
}

Cycles
EwTracker::threadOpenSince(unsigned tid, pm::PmoId pmo) const
{
    const PerPmo *s = stateIfSeen(pmo);
    TERP_ASSERT(s && tid < s->threadOpenSince.size() &&
                    s->threadOpenSince[tid] != notOpen,
                "open-since without open, tid ", tid);
    return s->threadOpenSince[tid];
}

namespace {

ExposureMetrics
fromSummaries(const Summary &ew, const Summary &tew, Cycles total,
              unsigned threads)
{
    ExposureMetrics m;
    m.ewCount = ew.count();
    m.tewCount = tew.count();
    m.ewAvgUs = cyclesToUs(static_cast<Cycles>(ew.mean()));
    m.ewMaxUs = cyclesToUs(ew.max());
    m.tewAvgUs = cyclesToUs(static_cast<Cycles>(tew.mean()));
    m.tewMaxUs = cyclesToUs(tew.max());
    if (total > 0) {
        m.er = static_cast<double>(ew.sum()) /
               static_cast<double>(total);
        m.ter = static_cast<double>(tew.sum()) /
                (static_cast<double>(total) *
                 std::max(1u, threads));
    }
    return m;
}

} // namespace

ExposureMetrics
EwTracker::metricsFor(pm::PmoId pmo, Cycles total,
                      unsigned threads) const
{
    const PerPmo *s = stateIfSeen(pmo);
    if (!s)
        return {};
    return fromSummaries(s->ew, s->tew, total, threads);
}

ExposureMetrics
EwTracker::metricsAll(Cycles total, unsigned threads) const
{
    // Average the per-PMO metrics, as Table IV does ("avg over all
    // PMOs").
    ExposureMetrics acc;
    unsigned n = 0;
    for (pm::PmoId pmo = 0; pmo < perPmo.size(); ++pmo) {
        if (!perPmo[pmo].seen)
            continue;
        ExposureMetrics m = metricsFor(pmo, total, threads);
        if (m.ewCount == 0 && m.tewCount == 0)
            continue;
        acc.ewAvgUs += m.ewAvgUs;
        acc.ewMaxUs = std::max(acc.ewMaxUs, m.ewMaxUs);
        acc.er += m.er;
        acc.tewAvgUs += m.tewAvgUs;
        acc.tewMaxUs = std::max(acc.tewMaxUs, m.tewMaxUs);
        acc.ter += m.ter;
        acc.ewCount += m.ewCount;
        acc.tewCount += m.tewCount;
        ++n;
    }
    if (n > 0) {
        acc.ewAvgUs /= n;
        acc.er /= n;
        acc.tewAvgUs /= n;
        acc.ter /= n;
    }
    return acc;
}

const Summary *
EwTracker::ewSummaryFor(pm::PmoId pmo) const
{
    const PerPmo *s = stateIfSeen(pmo);
    return s ? &s->ew : nullptr;
}

const Summary *
EwTracker::tewSummaryFor(pm::PmoId pmo) const
{
    const PerPmo *s = stateIfSeen(pmo);
    return s ? &s->tew : nullptr;
}

std::vector<pm::PmoId>
EwTracker::pmosSeen() const
{
    std::vector<pm::PmoId> out;
    for (pm::PmoId pmo = 0; pmo < perPmo.size(); ++pmo)
        if (perPmo[pmo].seen)
            out.push_back(pmo);
    return out;
}

} // namespace semantics
} // namespace terp
