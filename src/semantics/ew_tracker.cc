#include "semantics/ew_tracker.hh"

#include <algorithm>

#include "common/logging.hh"

namespace terp {
namespace semantics {

const char *
blameCauseName(BlameCause c)
{
    switch (c) {
      case BlameCause::AppHold:
        return "app_hold";
      case BlameCause::SweeperLag:
        return "sweeper_lag";
      case BlameCause::QueueWait:
        return "queue_wait";
      case BlameCause::SlowClientHold:
        return "slow_client_hold";
      case BlameCause::RecoveryReopen:
        return "recovery_reopen";
      case BlameCause::TxnLockWait:
        return "txn_lock_wait";
      case BlameCause::EnergyDark:
        return "energy_dark";
      case BlameCause::NumCauses:
        break;
    }
    return "?";
}

EwTracker::PerPmo &
EwTracker::state(pm::PmoId pmo)
{
    if (pmo >= perPmo.size())
        perPmo.resize(pmo + 1);
    PerPmo &s = perPmo[pmo];
    s.seen = true;
    return s;
}

const EwTracker::PerPmo *
EwTracker::stateIfSeen(pm::PmoId pmo) const
{
    if (pmo >= perPmo.size() || !perPmo[pmo].seen)
        return nullptr;
    return &perPmo[pmo];
}

void
EwTracker::processOpen(pm::PmoId pmo, Cycles t)
{
    auto &s = state(pmo);
    TERP_ASSERT(!s.open, "double process-open of PMO ", pmo);
    s.open = true;
    s.openSince = t;
    s.segs.clear();
    s.causeSince = t;
    s.idleBase = recovering ? BlameCause::RecoveryReopen
                            : BlameCause::AppHold;
}

void
EwTracker::processClose(pm::PmoId pmo, Cycles t)
{
    auto &s = state(pmo);
    TERP_ASSERT(s.open, "process-close of unopened PMO ", pmo);
    TERP_ASSERT(t >= s.openSince, "time went backwards");
    closeBlame(s, pmo, t);
    recordEw(s, pmo, t - s.openSince);
    s.open = false;
    if (closeHook)
        closeHook(pmo, t, t - s.openSince);
}

void
EwTracker::threadOpen(unsigned tid, pm::PmoId pmo, Cycles t)
{
    auto &s = state(pmo);
    if (tid >= s.threadOpenSince.size())
        s.threadOpenSince.resize(tid + 1, notOpen);
    TERP_ASSERT(s.threadOpenSince[tid] == notOpen,
                "double thread-open, tid ", tid, " pmo ", pmo);
    if (s.open)
        flushBlame(s, t);
    s.threadOpenSince[tid] = t;
}

void
EwTracker::threadClose(unsigned tid, pm::PmoId pmo, Cycles t)
{
    auto &s = state(pmo);
    TERP_ASSERT(tid < s.threadOpenSince.size() &&
                    s.threadOpenSince[tid] != notOpen,
                "thread-close without open, tid ", tid);
    TERP_ASSERT(t >= s.threadOpenSince[tid], "time went backwards");
    if (s.open)
        flushBlame(s, t);
    recordTew(s, pmo, t - s.threadOpenSince[tid]);
    s.threadOpenSince[tid] = notOpen;
}

void
EwTracker::finalize(Cycles t_end)
{
    for (pm::PmoId pmo = 0; pmo < perPmo.size(); ++pmo) {
        PerPmo &s = perPmo[pmo];
        if (!s.seen)
            continue;
        if (s.open) {
            // A free-running sweeper can reopen a window beyond the
            // final thread clock; clamp like the crash path does.
            Cycles len =
                t_end >= s.openSince ? t_end - s.openSince : 0;
            closeBlame(s, pmo, s.openSince + len);
            recordEw(s, pmo, len);
            s.open = false;
            if (closeHook)
                closeHook(pmo, s.openSince + len, len);
        }
        for (Cycles &since : s.threadOpenSince) {
            if (since == notOpen)
                continue;
            recordTew(s, pmo, t_end >= since ? t_end - since : 0);
            since = notOpen;
        }
    }
}

// ---- blame ------------------------------------------------------------

bool
EwTracker::heldForBlame(const PerPmo &s)
{
    if (s.externalHold)
        return true;
    for (Cycles since : s.threadOpenSince)
        if (since != notOpen)
            return true;
    return false;
}

void
EwTracker::appendSeg(PerPmo &s, Cycles t, BlameCause c)
{
    if (!s.segs.empty() && s.segs.back().cause == c)
        s.segs.back().end = t;
    else
        s.segs.push_back({t, c});
    s.causeSince = t;
}

void
EwTracker::flushBlame(PerPmo &s, Cycles t)
{
    // Thread clocks are not globally monotone; a span that would end
    // before it began resolves later (or is truncated at close).
    if (t <= s.causeSince)
        return;
    if (s.holdCause != noCause) {
        appendSeg(s, t, static_cast<BlameCause>(s.holdCause));
    } else if (heldForBlame(s)) {
        appendSeg(s, t, BlameCause::AppHold);
    } else if (dark) {
        appendSeg(s, t, BlameCause::EnergyDark);
    } else if (s.idleCause != noCause) {
        appendSeg(s, t, static_cast<BlameCause>(s.idleCause));
    } else {
        // Idle with no override: the app's own gap up to the EW
        // deadline, the sweeper's lag beyond it.
        Cycles deadline = s.openSince + blameTarget;
        if (blameTarget == 0 || t <= deadline) {
            appendSeg(s, t, s.idleBase);
        } else {
            if (s.causeSince < deadline)
                appendSeg(s, deadline, s.idleBase);
            appendSeg(s, t, BlameCause::SweeperLag);
        }
    }
}

void
EwTracker::closeBlame(PerPmo &s, pm::PmoId pmo, Cycles t)
{
    flushBlame(s, t);

    // Truncate to the close time: flushes driven by other threads'
    // clocks may have resolved spans past a sweeper's earlier close.
    Cycles start = s.openSince;
    Cycles sum = 0;
    std::size_t keep = 0;
    Cycles causeLen[numBlameCauses] = {};
    for (BlameSeg &seg : s.segs) {
        if (start >= t)
            break;
        Cycles end = std::min(seg.end, t);
        if (end <= start)
            break;
        seg.end = end;
        causeLen[static_cast<unsigned>(seg.cause)] += end - start;
        sum += end - start;
        ++keep;
        start = end;
    }
    s.segs.resize(keep);

    TERP_ASSERT(sum == t - s.openSince,
                "blame segments don't tile window of PMO ", pmo);

    if (segHook)
        for (const BlameSeg &seg : s.segs)
            segHook(pmo, seg.end, seg.cause);
    for (unsigned c = 0; c < numBlameCauses; ++c) {
        if (!causeLen[c])
            continue;
        s.blame[c] += causeLen[c];
        if (!reg)
            continue;
        const char *cause =
            blameCauseName(static_cast<BlameCause>(c));
        reg->histogram(
               metrics::labeled("exposure.blame_cycles", "cause",
                                cause))
            .record(causeLen[c]);
        reg->counter(metrics::labeled("exposure.blame_total", "cause",
                                      cause))
            .inc(causeLen[c]);
        if (pmo < tenantOf.size() && !tenantOf[pmo].empty()) {
            reg->counter(metrics::labeled(
                             metrics::labeled("exposure.blame_total",
                                              "cause", cause),
                             "tenant", tenantOf[pmo]))
                .inc(causeLen[c]);
        }
    }
    s.segs.clear();
}

void
EwTracker::setExternalHold(pm::PmoId pmo, bool on, Cycles t)
{
    auto &s = state(pmo);
    if (s.externalHold == on)
        return;
    if (s.open)
        flushBlame(s, t);
    s.externalHold = on;
}

void
EwTracker::setHoldCause(pm::PmoId pmo, BlameCause c, Cycles t)
{
    auto &s = state(pmo);
    if (s.open)
        flushBlame(s, t);
    s.holdCause = static_cast<std::uint8_t>(c);
}

void
EwTracker::clearHoldCause(pm::PmoId pmo, Cycles t)
{
    auto &s = state(pmo);
    if (s.open)
        flushBlame(s, t);
    s.holdCause = noCause;
}

void
EwTracker::setIdleCause(pm::PmoId pmo, BlameCause c, Cycles t)
{
    auto &s = state(pmo);
    if (s.open)
        flushBlame(s, t);
    s.idleCause = static_cast<std::uint8_t>(c);
}

void
EwTracker::clearIdleCause(pm::PmoId pmo, Cycles t)
{
    auto &s = state(pmo);
    if (s.open)
        flushBlame(s, t);
    s.idleCause = noCause;
}

void
EwTracker::setEnergyDark(bool on, Cycles t)
{
    if (dark == on)
        return;
    for (PerPmo &s : perPmo)
        if (s.seen && s.open)
            flushBlame(s, t);
    dark = on;
}

void
EwTracker::resetTransientCauses()
{
    for (PerPmo &s : perPmo) {
        if (!s.seen)
            continue;
        TERP_ASSERT(!s.open,
                    "transient-cause reset with a window open");
        s.externalHold = false;
        s.holdCause = noCause;
        s.idleCause = noCause;
    }
}

void
EwTracker::setTenant(pm::PmoId pmo, const std::string &tenant)
{
    if (pmo >= tenantOf.size())
        tenantOf.resize(pmo + 1);
    tenantOf[pmo] = tenant;
}

Cycles
EwTracker::blameTotal(pm::PmoId pmo, BlameCause c) const
{
    const PerPmo *s = stateIfSeen(pmo);
    return s ? s->blame[static_cast<unsigned>(c)] : 0;
}

Cycles
EwTracker::blameTotalAll(BlameCause c) const
{
    Cycles sum = 0;
    for (const PerPmo &s : perPmo)
        if (s.seen)
            sum += s.blame[static_cast<unsigned>(c)];
    return sum;
}

void
EwTracker::recordEw(PerPmo &s, pm::PmoId pmo, Cycles len)
{
    s.ew.add(len);
    if (sloEw > 0 && len > sloEw) {
        ++ewViolations;
        if (reg)
            reg->counter("exposure.slo_violations{win=\"ew\"}").inc();
    }
    if (reg) {
        reg->histogram(metrics::labeled("exposure.ew_cycles", "pmo",
                                        std::to_string(pmo)))
            .record(len);
        reg->histogram("exposure.ew_cycles{pmo=\"all\"}").record(len);
    }
}

void
EwTracker::recordTew(PerPmo &s, pm::PmoId pmo, Cycles len)
{
    s.tew.add(len);
    if (sloTew > 0 && len > sloTew) {
        ++tewViolations;
        if (reg)
            reg->counter("exposure.slo_violations{win=\"tew\"}").inc();
    }
    if (reg) {
        reg->histogram(metrics::labeled("exposure.tew_cycles", "pmo",
                                        std::to_string(pmo)))
            .record(len);
        reg->histogram("exposure.tew_cycles{pmo=\"all\"}").record(len);
    }
}

bool
EwTracker::processWindowOpen(pm::PmoId pmo) const
{
    const PerPmo *s = stateIfSeen(pmo);
    return s && s->open;
}

Cycles
EwTracker::processOpenSince(pm::PmoId pmo) const
{
    const PerPmo *s = stateIfSeen(pmo);
    TERP_ASSERT(s && s->open, "open-since of unopened PMO ", pmo);
    return s->openSince;
}

Cycles
EwTracker::threadOpenSince(unsigned tid, pm::PmoId pmo) const
{
    const PerPmo *s = stateIfSeen(pmo);
    TERP_ASSERT(s && tid < s->threadOpenSince.size() &&
                    s->threadOpenSince[tid] != notOpen,
                "open-since without open, tid ", tid);
    return s->threadOpenSince[tid];
}

namespace {

ExposureMetrics
fromSummaries(const Summary &ew, const Summary &tew, Cycles total,
              unsigned threads)
{
    ExposureMetrics m;
    m.ewCount = ew.count();
    m.tewCount = tew.count();
    m.ewAvgUs = cyclesToUs(static_cast<Cycles>(ew.mean()));
    m.ewMaxUs = cyclesToUs(ew.max());
    m.tewAvgUs = cyclesToUs(static_cast<Cycles>(tew.mean()));
    m.tewMaxUs = cyclesToUs(tew.max());
    if (total > 0) {
        m.er = static_cast<double>(ew.sum()) /
               static_cast<double>(total);
        m.ter = static_cast<double>(tew.sum()) /
                (static_cast<double>(total) *
                 std::max(1u, threads));
    }
    return m;
}

} // namespace

ExposureMetrics
EwTracker::metricsFor(pm::PmoId pmo, Cycles total,
                      unsigned threads) const
{
    const PerPmo *s = stateIfSeen(pmo);
    if (!s)
        return {};
    return fromSummaries(s->ew, s->tew, total, threads);
}

ExposureMetrics
EwTracker::metricsAll(Cycles total, unsigned threads) const
{
    // Average the per-PMO metrics, as Table IV does ("avg over all
    // PMOs").
    ExposureMetrics acc;
    unsigned n = 0;
    for (pm::PmoId pmo = 0; pmo < perPmo.size(); ++pmo) {
        if (!perPmo[pmo].seen)
            continue;
        ExposureMetrics m = metricsFor(pmo, total, threads);
        if (m.ewCount == 0 && m.tewCount == 0)
            continue;
        acc.ewAvgUs += m.ewAvgUs;
        acc.ewMaxUs = std::max(acc.ewMaxUs, m.ewMaxUs);
        acc.er += m.er;
        acc.tewAvgUs += m.tewAvgUs;
        acc.tewMaxUs = std::max(acc.tewMaxUs, m.tewMaxUs);
        acc.ter += m.ter;
        acc.ewCount += m.ewCount;
        acc.tewCount += m.tewCount;
        ++n;
    }
    if (n > 0) {
        acc.ewAvgUs /= n;
        acc.er /= n;
        acc.tewAvgUs /= n;
        acc.ter /= n;
    }
    return acc;
}

const Summary *
EwTracker::ewSummaryFor(pm::PmoId pmo) const
{
    const PerPmo *s = stateIfSeen(pmo);
    return s ? &s->ew : nullptr;
}

const Summary *
EwTracker::tewSummaryFor(pm::PmoId pmo) const
{
    const PerPmo *s = stateIfSeen(pmo);
    return s ? &s->tew : nullptr;
}

std::vector<pm::PmoId>
EwTracker::pmosSeen() const
{
    std::vector<pm::PmoId> out;
    for (pm::PmoId pmo = 0; pmo < perPmo.size(); ++pmo)
        if (perPmo[pmo].seen)
            out.push_back(pmo);
    return out;
}

} // namespace semantics
} // namespace terp
