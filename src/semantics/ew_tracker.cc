#include "semantics/ew_tracker.hh"

#include <algorithm>

#include "common/logging.hh"

namespace terp {
namespace semantics {

void
EwTracker::processOpen(pm::PmoId pmo, Cycles t)
{
    auto &s = perPmo[pmo];
    TERP_ASSERT(!s.open, "double process-open of PMO ", pmo);
    s.open = true;
    s.openSince = t;
}

void
EwTracker::processClose(pm::PmoId pmo, Cycles t)
{
    auto &s = perPmo[pmo];
    TERP_ASSERT(s.open, "process-close of unopened PMO ", pmo);
    TERP_ASSERT(t >= s.openSince, "time went backwards");
    s.ew.add(t - s.openSince);
    s.open = false;
}

void
EwTracker::threadOpen(unsigned tid, pm::PmoId pmo, Cycles t)
{
    auto &s = perPmo[pmo];
    TERP_ASSERT(!s.threadOpenSince.count(tid),
                "double thread-open, tid ", tid, " pmo ", pmo);
    s.threadOpenSince[tid] = t;
}

void
EwTracker::threadClose(unsigned tid, pm::PmoId pmo, Cycles t)
{
    auto &s = perPmo[pmo];
    auto it = s.threadOpenSince.find(tid);
    TERP_ASSERT(it != s.threadOpenSince.end(),
                "thread-close without open, tid ", tid);
    TERP_ASSERT(t >= it->second, "time went backwards");
    s.tew.add(t - it->second);
    s.threadOpenSince.erase(it);
}

void
EwTracker::finalize(Cycles t_end)
{
    for (auto &[pmo, s] : perPmo) {
        (void)pmo;
        if (s.open) {
            s.ew.add(t_end >= s.openSince ? t_end - s.openSince : 0);
            s.open = false;
        }
        for (auto &[tid, since] : s.threadOpenSince) {
            (void)tid;
            s.tew.add(t_end >= since ? t_end - since : 0);
        }
        s.threadOpenSince.clear();
    }
}

bool
EwTracker::processWindowOpen(pm::PmoId pmo) const
{
    auto it = perPmo.find(pmo);
    return it != perPmo.end() && it->second.open;
}

namespace {

ExposureMetrics
fromSummaries(const Summary &ew, const Summary &tew, Cycles total,
              unsigned threads)
{
    ExposureMetrics m;
    m.ewCount = ew.count();
    m.tewCount = tew.count();
    m.ewAvgUs = cyclesToUs(static_cast<Cycles>(ew.mean()));
    m.ewMaxUs = cyclesToUs(ew.max());
    m.tewAvgUs = cyclesToUs(static_cast<Cycles>(tew.mean()));
    m.tewMaxUs = cyclesToUs(tew.max());
    if (total > 0) {
        m.er = static_cast<double>(ew.sum()) /
               static_cast<double>(total);
        m.ter = static_cast<double>(tew.sum()) /
                (static_cast<double>(total) *
                 std::max(1u, threads));
    }
    return m;
}

} // namespace

ExposureMetrics
EwTracker::metricsFor(pm::PmoId pmo, Cycles total,
                      unsigned threads) const
{
    auto it = perPmo.find(pmo);
    if (it == perPmo.end())
        return {};
    return fromSummaries(it->second.ew, it->second.tew, total, threads);
}

ExposureMetrics
EwTracker::metricsAll(Cycles total, unsigned threads) const
{
    // Average the per-PMO metrics, as Table IV does ("avg over all
    // PMOs").
    ExposureMetrics acc;
    unsigned n = 0;
    for (const auto &[pmo, s] : perPmo) {
        (void)s;
        ExposureMetrics m = metricsFor(pmo, total, threads);
        if (m.ewCount == 0 && m.tewCount == 0)
            continue;
        acc.ewAvgUs += m.ewAvgUs;
        acc.ewMaxUs = std::max(acc.ewMaxUs, m.ewMaxUs);
        acc.er += m.er;
        acc.tewAvgUs += m.tewAvgUs;
        acc.tewMaxUs = std::max(acc.tewMaxUs, m.tewMaxUs);
        acc.ter += m.ter;
        acc.ewCount += m.ewCount;
        acc.tewCount += m.tewCount;
        ++n;
    }
    if (n > 0) {
        acc.ewAvgUs /= n;
        acc.er /= n;
        acc.tewAvgUs /= n;
        acc.ter /= n;
    }
    return acc;
}

const Summary *
EwTracker::ewSummaryFor(pm::PmoId pmo) const
{
    auto it = perPmo.find(pmo);
    return it == perPmo.end() ? nullptr : &it->second.ew;
}

const Summary *
EwTracker::tewSummaryFor(pm::PmoId pmo) const
{
    auto it = perPmo.find(pmo);
    return it == perPmo.end() ? nullptr : &it->second.tew;
}

std::vector<pm::PmoId>
EwTracker::pmosSeen() const
{
    std::vector<pm::PmoId> out;
    out.reserve(perPmo.size());
    for (const auto &[pmo, s] : perPmo) {
        (void)s;
        out.push_back(pmo);
    }
    return out;
}

} // namespace semantics
} // namespace terp
