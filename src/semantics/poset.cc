#include "semantics/poset.hh"

#include <sstream>

#include "common/logging.hh"

namespace terp {
namespace semantics {

std::size_t
Poset::add(const std::string &name)
{
    auto it = index.find(name);
    if (it != index.end())
        return it->second;
    std::size_t i = elems.size();
    elems.push_back(name);
    index[name] = i;
    for (auto &row : rel)
        row.push_back(false);
    rel.emplace_back(elems.size(), false);
    rel[i][i] = true; // reflexive
    return i;
}

std::size_t
Poset::idx(const std::string &name) const
{
    auto it = index.find(name);
    TERP_ASSERT(it != index.end(), "unknown poset element: ", name);
    return it->second;
}

bool
Poset::contains(const std::string &name) const
{
    return index.count(name) != 0;
}

bool
Poset::leqIdx(std::size_t a, std::size_t b) const
{
    return rel[a][b];
}

bool
Poset::order(const std::string &lo, const std::string &hi)
{
    std::size_t a = add(lo);
    std::size_t b = add(hi);
    if (a == b)
        return true;
    if (rel[b][a])
        return false; // would violate antisymmetry
    // Close transitively: everything <= a becomes <= everything >= b.
    const std::size_t n = elems.size();
    for (std::size_t x = 0; x < n; ++x) {
        if (!rel[x][a])
            continue;
        for (std::size_t y = 0; y < n; ++y) {
            if (rel[b][y])
                rel[x][y] = true;
        }
    }
    return true;
}

bool
Poset::leq(const std::string &a, const std::string &b) const
{
    return leqIdx(idx(a), idx(b));
}

bool
Poset::comparable(const std::string &a, const std::string &b) const
{
    std::size_t i = idx(a), j = idx(b);
    return rel[i][j] || rel[j][i];
}

std::vector<std::string>
Poset::maximal() const
{
    std::vector<std::string> out;
    for (std::size_t i = 0; i < elems.size(); ++i) {
        bool is_max = true;
        for (std::size_t j = 0; j < elems.size(); ++j) {
            if (i != j && rel[i][j]) {
                is_max = false;
                break;
            }
        }
        if (is_max)
            out.push_back(elems[i]);
    }
    return out;
}

std::vector<std::string>
Poset::minimal() const
{
    std::vector<std::string> out;
    for (std::size_t i = 0; i < elems.size(); ++i) {
        bool is_min = true;
        for (std::size_t j = 0; j < elems.size(); ++j) {
            if (i != j && rel[j][i]) {
                is_min = false;
                break;
            }
        }
        if (is_min)
            out.push_back(elems[i]);
    }
    return out;
}

std::vector<std::pair<std::string, std::string>>
Poset::hasseEdges() const
{
    std::vector<std::pair<std::string, std::string>> edges;
    const std::size_t n = elems.size();
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = 0; b < n; ++b) {
            if (a == b || !rel[a][b])
                continue;
            // a < b is a cover if no c strictly between.
            bool cover = true;
            for (std::size_t c = 0; c < n; ++c) {
                if (c == a || c == b)
                    continue;
                if (rel[a][c] && rel[c][b]) {
                    cover = false;
                    break;
                }
            }
            if (cover)
                edges.emplace_back(elems[a], elems[b]);
        }
    }
    return edges;
}

std::string
Poset::toDot(const std::string &graph_name) const
{
    std::ostringstream os;
    os << "digraph " << graph_name << " {\n"
       << "  rankdir=BT;\n";
    for (const auto &e : elems)
        os << "  \"" << e << "\";\n";
    for (const auto &[lo, hi] : hasseEdges())
        os << "  \"" << lo << "\" -> \"" << hi << "\";\n";
    os << "}\n";
    return os.str();
}

std::string
Poset::meet(const std::string &a, const std::string &b) const
{
    std::size_t i = idx(a), j = idx(b);
    // Lower bounds of both.
    std::vector<std::size_t> lbs;
    for (std::size_t c = 0; c < elems.size(); ++c)
        if (rel[c][i] && rel[c][j])
            lbs.push_back(c);
    // Greatest among them: an lb above all other lbs.
    for (std::size_t c : lbs) {
        bool greatest = true;
        for (std::size_t d : lbs) {
            if (!rel[d][c]) {
                greatest = false;
                break;
            }
        }
        if (greatest)
            return elems[c];
    }
    return {};
}

Poset
makeCanonicalTerpPoset()
{
    Poset p;
    p.add("thread-permission-control");
    p.add("process-attach-detach");
    p.add("user-level-acl");
    p.order("thread-permission-control", "process-attach-detach");
    p.order("process-attach-detach", "user-level-acl");
    return p;
}

} // namespace semantics
} // namespace terp
