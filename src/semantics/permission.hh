/**
 * @file
 * Definitions 1 and 2 of the paper: permission sets (binary
 * read/write/execute rights over data objects) and permission groups
 * (sets of agents sharing a permission set).
 */

#ifndef TERP_SEMANTICS_PERMISSION_HH
#define TERP_SEMANTICS_PERMISSION_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace terp {
namespace semantics {

/** The three access rights of Definition 1. */
enum class Right : unsigned { Read = 1, Write = 2, Execute = 4 };

/** A set of rights over one object, encoded as a bitmask. */
class Rights
{
  public:
    Rights() = default;
    explicit Rights(unsigned bits_) : bits(bits_ & 7u) {}

    static Rights none() { return Rights(0); }
    static Rights r() { return Rights(1); }
    static Rights rw() { return Rights(3); }
    static Rights rwx() { return Rights(7); }

    bool has(Right r) const
    {
        return (bits & static_cast<unsigned>(r)) != 0;
    }

    Rights
    unionWith(Rights o) const
    {
        return Rights(bits | o.bits);
    }

    Rights
    intersect(Rights o) const
    {
        return Rights(bits & o.bits);
    }

    /** Subset relation: every right in *this is also in o. */
    bool
    subsetOf(Rights o) const
    {
        return (bits & ~o.bits) == 0;
    }

    bool operator==(const Rights &o) const { return bits == o.bits; }

    unsigned raw() const { return bits; }

  private:
    unsigned bits = 0;
};

/**
 * Definition 1 — Permission set: a map from object ids to rights.
 * Objects absent from the map carry no rights.
 */
class PermissionSet
{
  public:
    void set(std::uint64_t object, Rights r) { perms[object] = r; }

    Rights
    rightsOn(std::uint64_t object) const
    {
        auto it = perms.find(object);
        return it == perms.end() ? Rights::none() : it->second;
    }

    /** P subset-of Q: every granted right of P is granted by Q. */
    bool subsetOf(const PermissionSet &q) const;

    /** Pointwise intersection. */
    PermissionSet intersect(const PermissionSet &q) const;

    std::size_t objectCount() const { return perms.size(); }

  private:
    std::map<std::uint64_t, Rights> perms;
};

/**
 * Definition 2 — Permission group: agents (threads, processes,
 * users) that share a permission set P, i.e. P is a subset of the
 * intersection of the members' own permission sets.
 */
class PermissionGroup
{
  public:
    PermissionGroup(std::string name, PermissionSet shared)
        : groupName(std::move(name)), sharedPerms(std::move(shared))
    {
    }

    void addAgent(std::uint64_t agent, const PermissionSet &agent_perms);

    /** Check the Definition 2 side condition. */
    bool wellFormed() const;

    const std::string &name() const { return groupName; }
    const PermissionSet &shared() const { return sharedPerms; }
    const std::set<std::uint64_t> &agents() const { return members; }

  private:
    std::string groupName;
    PermissionSet sharedPerms;
    std::set<std::uint64_t> members;
    std::map<std::uint64_t, PermissionSet> memberPerms;
};

} // namespace semantics
} // namespace terp

#endif // TERP_SEMANTICS_PERMISSION_HH
