/**
 * @file
 * The four candidate attach/detach semantics of Section IV:
 * Basic, Outermost, FCFS and the chosen EW-Conscious semantics —
 * implemented as specification-level state machines that classify
 * each attach/detach/access event the way Figure 3 does.
 *
 * The production TERP runtime (src/core) implements EW-Conscious with
 * hardware acceleration; these models are the executable
 * specification used for differential testing and for the Fig 3 /
 * Fig 4 walkthroughs.
 */

#ifndef TERP_SEMANTICS_ATTACH_SEMANTICS_HH
#define TERP_SEMANTICS_ATTACH_SEMANTICS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/units.hh"
#include "pm/oid.hh"
#include "pm/pmo.hh"

namespace terp {
namespace semantics {

/** Which semantics a model implements. */
enum class SemanticsKind { Basic, Outermost, Fcfs, EwConscious };

const char *semanticsName(SemanticsKind k);

/** Classification of one event under a semantics (cf. Fig 3). */
enum class Verdict
{
    Performed, //!< executed for real (maps/unmaps the PMO)
    Silent,    //!< valid but lowered / suppressed
    Reattach,  //!< access triggered an automatic re-attach (FCFS)
    Valid,     //!< access permitted
    Invalid,   //!< erroneous call or denied access
    Undefined, //!< behaviour after a prior semantic error (Basic)
    SegFault,  //!< access to an unmapped PMO
};

const char *verdictName(Verdict v);

/** What a sweeper tick decided for one PMO (EW-Conscious only). */
struct SweepOutcome
{
    pm::PmoId pmo;
    bool detached; //!< true: fully detached; false: window restarted
};

/**
 * Abstract attach/detach semantics over one process. Thread ids
 * identify the calling thread; all models answer three questions:
 * what does attach do, what does detach do, is an access legal.
 */
class AttachSemantics
{
  public:
    virtual ~AttachSemantics() = default;

    virtual SemanticsKind kind() const = 0;

    virtual Verdict onAttach(unsigned tid, pm::PmoId pmo, Cycles t,
                             pm::Mode mode = pm::Mode::ReadWrite) = 0;
    virtual Verdict onDetach(unsigned tid, pm::PmoId pmo, Cycles t) = 0;
    virtual Verdict onAccess(unsigned tid, pm::PmoId pmo, Cycles t,
                             bool write = false) = 0;

    /** Is the PMO currently mapped process-wide? */
    virtual bool mapped(pm::PmoId pmo) const = 0;

    /**
     * Periodic sweeper tick at time @p t (Fig 7a). Only the
     * EW-Conscious model has time-bounded windows to enforce; the
     * other semantics have no sweeper and return nothing.
     */
    virtual std::vector<SweepOutcome> onSweep(Cycles t) { return {}; }

    /** Factory. @p ew_limit only matters for EW-Conscious. */
    static std::unique_ptr<AttachSemantics>
    make(SemanticsKind k, Cycles ew_limit = target::defaultEw);
};

/**
 * Basic semantics: every attach must be followed by a detach; a
 * second attach while attached is invalid and poisons subsequent
 * behaviour (Fig 3, "Basic" column). Process-wide: thread ids are
 * ignored except for reporting.
 */
class BasicSemantics : public AttachSemantics
{
  public:
    SemanticsKind kind() const override { return SemanticsKind::Basic; }
    Verdict onAttach(unsigned tid, pm::PmoId pmo, Cycles t,
                     pm::Mode mode = pm::Mode::ReadWrite) override;
    Verdict onDetach(unsigned tid, pm::PmoId pmo, Cycles t) override;
    Verdict onAccess(unsigned tid, pm::PmoId pmo, Cycles t,
                     bool write = false) override;
    bool mapped(pm::PmoId pmo) const override;

  private:
    struct St { bool attached = false; bool poisoned = false; };
    std::map<pm::PmoId, St> st;
};

/**
 * Outermost semantics: overlapping pairs must nest perfectly; only
 * the outermost attach/detach is performed, inner ones are silent.
 * The actual attached time can therefore be unboundedly long.
 */
class OutermostSemantics : public AttachSemantics
{
  public:
    SemanticsKind kind() const override
    {
        return SemanticsKind::Outermost;
    }
    Verdict onAttach(unsigned tid, pm::PmoId pmo, Cycles t,
                     pm::Mode mode = pm::Mode::ReadWrite) override;
    Verdict onDetach(unsigned tid, pm::PmoId pmo, Cycles t) override;
    Verdict onAccess(unsigned tid, pm::PmoId pmo, Cycles t,
                     bool write = false) override;
    bool mapped(pm::PmoId pmo) const override;

  private:
    std::map<pm::PmoId, int> depth;
};

/**
 * FCFS semantics: the outermost attach is performed, inner attaches
 * are silent; the first detach after an attach is performed, later
 * ones silent; an access between that performed detach and the
 * outermost detach triggers an automatic re-attach.
 */
class FcfsSemantics : public AttachSemantics
{
  public:
    SemanticsKind kind() const override { return SemanticsKind::Fcfs; }
    Verdict onAttach(unsigned tid, pm::PmoId pmo, Cycles t,
                     pm::Mode mode = pm::Mode::ReadWrite) override;
    Verdict onDetach(unsigned tid, pm::PmoId pmo, Cycles t) override;
    Verdict onAccess(unsigned tid, pm::PmoId pmo, Cycles t,
                     bool write = false) override;
    bool mapped(pm::PmoId pmo) const override;

  private:
    struct St { int depth = 0; bool attached = false; };
    std::map<pm::PmoId, St> st;
};

/**
 * EW-Conscious semantics (Section IV-C): per-thread non-overlapping
 * pairs; attach performs the real mapping only when the PMO is
 * unmapped, otherwise lowers to opening the thread's permission;
 * detach performs the real unmapping only when (i) the time since
 * the last real attach exceeds L and (ii) no other thread still has
 * permission, otherwise lowers to closing the thread's permission.
 */
class EwConsciousSemantics : public AttachSemantics
{
  public:
    explicit EwConsciousSemantics(Cycles ew_limit)
        : limit(ew_limit)
    {
    }

    SemanticsKind kind() const override
    {
        return SemanticsKind::EwConscious;
    }
    Verdict onAttach(unsigned tid, pm::PmoId pmo, Cycles t,
                     pm::Mode mode = pm::Mode::ReadWrite) override;
    Verdict onDetach(unsigned tid, pm::PmoId pmo, Cycles t) override;
    Verdict onAccess(unsigned tid, pm::PmoId pmo, Cycles t,
                     bool write = false) override;
    bool mapped(pm::PmoId pmo) const override;

    /** Threads currently holding permission on @p pmo. */
    std::size_t permHolders(pm::PmoId pmo) const;

    /**
     * Sweeper: a PMO whose window reached the limit is fully
     * detached when idle, or has its window restarted (modelling the
     * forced re-randomization) when threads still hold permission.
     */
    std::vector<SweepOutcome> onSweep(Cycles t) override;

  private:
    struct St
    {
        bool attached = false;
        Cycles lastRealAttach = 0;
        std::map<unsigned, pm::Mode> holders; //!< open thread perms
    };
    Cycles limit;
    std::map<pm::PmoId, St> st;
};

} // namespace semantics
} // namespace terp

#endif // TERP_SEMANTICS_ATTACH_SEMANTICS_HH
