#include "semantics/permission.hh"

namespace terp {
namespace semantics {

bool
PermissionSet::subsetOf(const PermissionSet &q) const
{
    for (const auto &[obj, rights] : perms) {
        if (!rights.subsetOf(q.rightsOn(obj)))
            return false;
    }
    return true;
}

PermissionSet
PermissionSet::intersect(const PermissionSet &q) const
{
    PermissionSet out;
    for (const auto &[obj, rights] : perms) {
        Rights both = rights.intersect(q.rightsOn(obj));
        if (both.raw() != 0)
            out.set(obj, both);
    }
    return out;
}

void
PermissionGroup::addAgent(std::uint64_t agent,
                          const PermissionSet &agent_perms)
{
    members.insert(agent);
    memberPerms[agent] = agent_perms;
}

bool
PermissionGroup::wellFormed() const
{
    // P must be a subset of the intersection of all members'
    // permission sets; equivalently, a subset of each member's set.
    for (const auto &[agent, perms] : memberPerms) {
        (void)agent;
        if (!sharedPerms.subsetOf(perms))
            return false;
    }
    return true;
}

} // namespace semantics
} // namespace terp
