/**
 * @file
 * Theorem 6 of the paper — the temporal protection theorem: an
 * attack that needs a memory region to be stationary and accessible
 * for at least t time is prevented if every exposure window is
 * shorter than t and the region's location changes before t elapses.
 *
 * This header provides a small checker used by the security tests to
 * validate that a recorded exposure history satisfies the theorem's
 * precondition for a given attack time.
 */

#ifndef TERP_SEMANTICS_THEOREM_HH
#define TERP_SEMANTICS_THEOREM_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"

namespace terp {
namespace semantics {

/** One span during which a region was accessible at a fixed address. */
struct StationaryWindow
{
    Cycles begin;
    Cycles end;
    std::uint64_t location; //!< the region's base address in this span

    Cycles length() const { return end - begin; }
};

/**
 * Check the premise of Theorem 6: with attack time @p attack_cycles,
 * the attack is prevented iff no single window is >= the attack time
 * and consecutive windows never keep the same location (so progress
 * cannot carry across windows).
 */
bool
attackPrevented(const std::vector<StationaryWindow> &history,
                Cycles attack_cycles);

/**
 * The longest stationary-and-accessible span in the history,
 * coalescing adjacent windows that kept the same location.
 */
Cycles
maxStationaryExposure(const std::vector<StationaryWindow> &history);

} // namespace semantics
} // namespace terp

#endif // TERP_SEMANTICS_THEOREM_HH
