/**
 * @file
 * Definition 4 of the paper: a TERP poset — protection mechanisms
 * partially ordered by strength.
 *
 * The Poset class is a small order-theory toolkit over named
 * elements: it maintains the relation closed under transitivity,
 * rejects antisymmetry violations, answers leq/comparable queries,
 * computes the cover relation (Hasse diagram edges), and exports
 * Graphviz. The TERP runtime uses a two-level instance
 * (process-wide attach/detach above thread permission control) to
 * implement "lowering" of constructs.
 */

#ifndef TERP_SEMANTICS_POSET_HH
#define TERP_SEMANTICS_POSET_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace terp {
namespace semantics {

/** A finite partially ordered set over named elements. */
class Poset
{
  public:
    /** Add an element; returns its index. Idempotent per name. */
    std::size_t add(const std::string &name);

    /**
     * Record lo <= hi and close transitively.
     * @return false (and no change) if this would break antisymmetry.
     */
    bool order(const std::string &lo, const std::string &hi);

    bool contains(const std::string &name) const;
    std::size_t size() const { return elems.size(); }
    const std::string &name(std::size_t i) const { return elems.at(i); }

    /** Is a <= b in the partial order? (reflexive) */
    bool leq(const std::string &a, const std::string &b) const;

    /** Are a and b ordered either way? */
    bool comparable(const std::string &a, const std::string &b) const;

    /** Elements with nothing above them. */
    std::vector<std::string> maximal() const;

    /** Elements with nothing below them. */
    std::vector<std::string> minimal() const;

    /**
     * Cover relation: pairs (lo, hi) with lo < hi and no element
     * strictly between — the edges of the Hasse diagram (Fig 2).
     */
    std::vector<std::pair<std::string, std::string>> hasseEdges() const;

    /** Graphviz dot of the Hasse diagram. */
    std::string toDot(const std::string &graph_name = "terp_poset") const;

    /**
     * Greatest element <= both a and b, if a unique one exists
     * (meet); empty string otherwise.
     */
    std::string meet(const std::string &a, const std::string &b) const;

  private:
    std::vector<std::string> elems;
    std::map<std::string, std::size_t> index;
    // rel[a][b] == true  <=>  a <= b (strictly below or equal).
    std::vector<std::vector<bool>> rel;

    std::size_t idx(const std::string &name) const;
    bool leqIdx(std::size_t a, std::size_t b) const;
};

/**
 * The canonical TERP poset used by the runtime: thread-level
 * permission control below process-wide attach/detach (which is in
 * turn below user/ACL-level protection).
 */
Poset makeCanonicalTerpPoset();

} // namespace semantics
} // namespace terp

#endif // TERP_SEMANTICS_POSET_HH
