#include "semantics/theorem.hh"

#include <algorithm>

#include "common/logging.hh"

namespace terp {
namespace semantics {

Cycles
maxStationaryExposure(const std::vector<StationaryWindow> &history)
{
    Cycles best = 0;
    for (std::size_t i = 0; i < history.size(); ++i) {
        TERP_ASSERT(history[i].end >= history[i].begin);
        Cycles span = history[i].length();
        // Coalesce with later windows that kept the same location:
        // probing progress made in one window stays valid in the
        // next if the region did not move.
        std::size_t j = i;
        while (j + 1 < history.size() &&
               history[j + 1].location == history[j].location) {
            ++j;
            span += history[j].length();
        }
        best = std::max(best, span);
    }
    return best;
}

bool
attackPrevented(const std::vector<StationaryWindow> &history,
                Cycles attack_cycles)
{
    return maxStationaryExposure(history) < attack_cycles;
}

} // namespace semantics
} // namespace terp
